// Distributed time-stepped simulation (the paper motivates its multicast
// with Distributed Interactive Simulation): every node multicasts its
// state update each round and advances when it has everyone else's update.
// Round time is dominated by the slowest multicast, so the scheme choice
// shows up directly in simulation speed.
#include <cstdio>
#include <vector>

#include "core/network.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

/// Runs `rounds` lock-step rounds over `n` participants; returns mean
/// round completion time in byte-times.
double run_lockstep(Scheme scheme, int rounds) {
  const int n = 9;  // all hosts of a 3x3 torus participate
  MulticastGroupSpec group;
  group.id = 0;
  for (HostId h = 0; h < n; ++h) group.members.push_back(h);

  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  Network net(make_torus(3, 3), {group}, cfg);

  double total_round_time = 0.0;
  Time round_start = 0;
  for (int r = 0; r < rounds; ++r) {
    round_start = net.sim().now();
    const std::int64_t before = net.metrics().messages_completed();
    // Everyone publishes a 512-byte state update simultaneously.
    for (HostId h = 0; h < n; ++h) {
      Demand d;
      d.src = h;
      d.multicast = true;
      d.group = 0;
      d.length = 512;
      net.inject(d);
    }
    // The barrier: run until all n multicasts completed (every node has
    // every other node's update).
    while (net.metrics().messages_completed() < before + n &&
           !net.sim().idle())
      net.run_until(net.sim().now() + 1'000);
    total_round_time += static_cast<double>(net.sim().now() - round_start);
  }
  return total_round_time / rounds;
}

}  // namespace

int main() {
  std::printf("lock-step distributed simulation: 9 nodes, 512 B updates\n");
  std::printf("========================================================\n\n");
  std::printf("%-18s %16s %14s\n", "scheme", "round (byte-times)", "round (us)");
  const int rounds = 25;
  for (const Scheme s :
       {Scheme::kRepeatedUnicast, Scheme::kHamiltonianSF,
        Scheme::kHamiltonianCT, Scheme::kTreeSF, Scheme::kTreeBroadcast}) {
    const double bt = run_lockstep(s, rounds);
    std::printf("%-18s %16.0f %14.1f\n", scheme_name(s), bt, bt * 0.0125);
  }
  return 0;
}
