// Figure 13: packet loss rate per host vs packet size on the Section 8.2
// testbed, all-send/receive case.
//
// Loss occurs only at the adapter input buffer (the implementation has no
// reservation protocol and cannot backpressure the fabric without risking
// deadlock — the point the paper uses to motivate its schemes). Expected
// shape: significant loss whenever hosts originate as well as forward,
// growing with packet size (fewer packets fit in the ~25 KB LANai buffer);
// the single-sender case loses nothing.
//
// The sweep runs (packet size, sender mode) points on a SweepRunner pool
// (--jobs N); each point is an independent Network, and the CSV/JSON rows
// are bit-identical at any job count.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time span = args.quick ? 3'000'000 : 12'000'000;

  std::printf("# Figure 13: packet loss per host vs packet size, all hosts "
              "sending+receiving (single-sender shown as control)\n");
  bench::print_header("packet_bytes",
                      {"loss_all_send_receive", "loss_single_sender"});
  const std::vector<std::int64_t> sizes =
      args.quick ? std::vector<std::int64_t>{1024, 4096, 8192}
                 : std::vector<std::int64_t>{1024, 2048, 3072, 4096, 5120,
                                             6144, 7168, 8192};

  // One sweep point per (size, mode); even index = all-send, odd = single.
  const std::size_t n_points = sizes.size() * 2;
  bench::JsonBench json("fig13_packet_loss");
  json.resize_rows(sizes.size());
  bench::CheckCollector checks(args.check);
  checks.resize(n_points);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<bench::TestbedResult> results(n_points);
  const auto walls = pool.run_indexed(n_points, [&](std::size_t i) {
    const std::int64_t size = sizes[i / 2];
    const bool all = (i % 2) == 0;
    char label[64];
    std::snprintf(label, sizeof label, "packet=%lld mode=%s",
                  static_cast<long long>(size), all ? "all" : "single");
    results[i] = bench::run_testbed(all ? 8 : 1, size, span,
                                    /*burst=*/true, /*tracing=*/false,
                                    /*trace_out=*/{}, args.trace_cap, &checks,
                                    i, label);
  });

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const auto& all = results[s * 2];
    const auto& single = results[s * 2 + 1];
    std::printf("%lld,%.3f,%.3f\n", static_cast<long long>(sizes[s]),
                all.loss_rate, single.loss_rate);
    json.set_row(s, {{"packet_bytes", static_cast<double>(sizes[s])},
                     {"loss_all_send_receive", all.loss_rate},
                     {"loss_single_sender", single.loss_rate},
                     {"all_send_throughput_mbps", all.throughput_mbps}});
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  const int check_rc = checks.finalize(&json);
  json.write();
  return check_rc;
}
