#include "adapter/buffer_pool.h"

#include <gtest/gtest.h>

namespace wormcast {
namespace {

TEST(BufferPool, PartitionsEvenly) {
  BufferPool p(1000, 2);
  EXPECT_EQ(p.n_classes(), 2);
  EXPECT_EQ(p.capacity(0), 500);
  EXPECT_EQ(p.capacity(1), 500);
  EXPECT_EQ(p.free_in(0), 500);
}

TEST(BufferPool, ClassesAreIndependent) {
  BufferPool p(1000, 2);
  EXPECT_TRUE(p.try_reserve(0, 500));
  EXPECT_FALSE(p.try_reserve(0, 1));
  EXPECT_TRUE(p.try_reserve(1, 500));
  EXPECT_EQ(p.total_used(), 1000);
  p.release(0, 500);
  EXPECT_TRUE(p.try_reserve(0, 100));
}

TEST(BufferPool, FailedReserveLeavesStateUnchanged) {
  BufferPool p(100, 1);
  EXPECT_TRUE(p.try_reserve(0, 60));
  EXPECT_FALSE(p.try_reserve(0, 50));
  EXPECT_EQ(p.used(0), 60);
  EXPECT_TRUE(p.try_reserve(0, 40));
}

TEST(BufferPool, UnpartitionedSharesAcrossClasses) {
  BufferPool p = BufferPool::unpartitioned(1000);
  EXPECT_TRUE(p.try_reserve(0, 600));
  // Class 1 maps onto the same region: only 400 left.
  EXPECT_FALSE(p.try_reserve(1, 500));
  EXPECT_TRUE(p.try_reserve(1, 400));
  p.release(0, 600);
  EXPECT_EQ(p.total_used(), 400);
}

TEST(BufferPool, ReleaseValidation) {
  BufferPool p(100, 2);
  EXPECT_TRUE(p.try_reserve(0, 30));
  EXPECT_THROW(p.release(0, 40), std::logic_error);
  EXPECT_THROW(p.release(0, -1), std::logic_error);
  p.release(0, 30);
  EXPECT_EQ(p.used(0), 0);
}

TEST(BufferPool, ClassIndexValidation) {
  BufferPool p(100, 2);
  EXPECT_THROW((void)p.try_reserve(2, 1), std::out_of_range);
  EXPECT_THROW((void)p.try_reserve(-1, 1), std::out_of_range);
  EXPECT_THROW(BufferPool(100, 0), std::invalid_argument);
}

TEST(BufferPool, NegativeReservationRejected) {
  BufferPool p(100, 1);
  EXPECT_THROW((void)p.try_reserve(0, -5), std::invalid_argument);
}

TEST(BufferPool, ZeroByteReservationAlwaysFits) {
  BufferPool p(10, 2);
  EXPECT_TRUE(p.try_reserve(0, 5));
  EXPECT_TRUE(p.try_reserve(0, 0));
  EXPECT_EQ(p.used(0), 5);
}

}  // namespace
}  // namespace wormcast
