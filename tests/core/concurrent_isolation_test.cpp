// Concurrent-run isolation: two full Networks running on separate threads
// — with armed fault injection, tracing, and watchdogs — must produce
// exactly the results they produce when run sequentially. This is the
// executable form of the thread-safety audit behind the parallel sweep
// runner: no mutable statics or cross-instance state anywhere in src/.
// The TSan CI job (WORMCAST_SANITIZE=thread) runs this test to catch any
// future regression that the equality check alone might miss.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/network.h"
#include "harness/sweep_runner.h"
#include "net/topologies.h"
#include "traffic/groups.h"

namespace wormcast {
namespace {

struct RunResult {
  std::vector<std::pair<std::string, double>> counters;
  std::int64_t messages = 0;
  std::int64_t messages_completed = 0;
  std::int64_t retransmits = 0;
  std::int64_t faults_injected = 0;
  std::int64_t trace_events = 0;
};

/// A faulted, traced, watchdogged experiment — every per-instance
/// subsystem the audit cares about (FaultInjector, Tracer, Metrics,
/// DeadlockWatchdog, CounterRegistry) is live.
RunResult run_experiment(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.traffic.offered_load = 0.05;
  cfg.traffic.multicast_fraction = 0.5;
  cfg.traffic.mean_worm_len = 300.0;
  cfg.protocol.pool_bytes = 64 * 1024;
  cfg.protocol.ack_timeout = 15'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 6;
  cfg.faults.worm_kill_rate = 0.05;
  cfg.faults.ctrl_loss_rate = 0.05;
  cfg.seed = seed;
  auto group = make_full_group(8);
  Network net(make_myrinet_testbed(), {group}, cfg);
  net.enable_tracing(4096);
  net.attach_watchdog(250'000);
  net.run(/*warmup=*/2'000, /*measure=*/60'000, /*drain_cap=*/200'000);

  RunResult r;
  CounterRegistry reg;
  net.register_counters(reg);
  r.counters = reg.snapshot();
  const Network::Summary s = net.summary();
  r.messages = s.messages;
  r.messages_completed = s.messages_completed;
  r.retransmits = s.retransmits;
  r.faults_injected = s.faults_injected;
  r.trace_events = net.sim().tracer().recorded();
  return r;
}

void expect_same(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.messages_completed, b.messages_completed);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.trace_events, b.trace_events);
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].first, b.counters[i].first);
    EXPECT_EQ(a.counters[i].second, b.counters[i].second)
        << "counter " << a.counters[i].first;
  }
}

TEST(ConcurrentIsolation, TwoNetworksOnThreadsMatchSequentialRuns) {
  const std::uint64_t seed_a = 21, seed_b = 77;
  // Reference: sequential, one at a time.
  const RunResult seq_a = run_experiment(seed_a);
  const RunResult seq_b = run_experiment(seed_b);
  ASSERT_GT(seq_a.messages, 0);
  ASSERT_GT(seq_b.messages, 0);
  EXPECT_GT(seq_a.faults_injected, 0);

  // Concurrent: both Networks alive and running simultaneously.
  RunResult par_a, par_b;
  std::thread ta([&] { par_a = run_experiment(seed_a); });
  std::thread tb([&] { par_b = run_experiment(seed_b); });
  ta.join();
  tb.join();

  expect_same(seq_a, par_a);
  expect_same(seq_b, par_b);
}

TEST(ConcurrentIsolation, SweepRunnerPointsMatchSequentialAtAnyJobCount) {
  const std::vector<std::uint64_t> seeds = {3, 5, 9, 21};
  auto sweep = [&](int jobs) {
    return harness::SweepRunner(jobs).map<RunResult>(
        seeds.size(), [&](std::size_t i) { return run_experiment(seeds[i]); });
  };
  const auto seq = sweep(1);
  const auto par = sweep(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) expect_same(seq[i], par[i]);
}

}  // namespace
}  // namespace wormcast
