file(REMOVE_RECURSE
  "CMakeFiles/ablation_cutthrough.dir/ablation_cutthrough.cpp.o"
  "CMakeFiles/ablation_cutthrough.dir/ablation_cutthrough.cpp.o.d"
  "ablation_cutthrough"
  "ablation_cutthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cutthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
