file(REMOVE_RECURSE
  "CMakeFiles/wormcast_adapter.dir/buffer_pool.cpp.o"
  "CMakeFiles/wormcast_adapter.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/wormcast_adapter.dir/host_adapter.cpp.o"
  "CMakeFiles/wormcast_adapter.dir/host_adapter.cpp.o.d"
  "libwormcast_adapter.a"
  "libwormcast_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormcast_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
