// Builds the multicast delivery tree carried in a switch-level multicast
// worm's header (Section 3 / Figure 2).
//
// Paths are taken from an up/down routing restricted to the spanning tree
// (scheme (a) requires *all* worms to stay on the tree so the IDLE-filled
// branches cannot close a flow-control cycle); one-source paths on a tree
// always merge into a tree of output ports.
#pragma once

#include <vector>

#include "net/source_route.h"
#include "net/topology.h"
#include "net/updown.h"
#include "sim/types.h"

namespace wormcast {

/// Branch forest leaving the source host's switch that reaches every host
/// in `dests` (the source itself is skipped if present). Throws if the
/// routing's paths do not merge into a tree (use tree_links_only routing).
std::vector<McastRouteTree> build_mcast_branches(const Topology& topo,
                                                 const UpDownRouting& routing,
                                                 HostId src,
                                                 const std::vector<HostId>& dests);

}  // namespace wormcast
