#include "core/group_tables.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

class GroupTablesTest : public ::testing::Test {
 protected:
  GroupTablesTest() : topo_(make_torus(4, 4)), routing_(topo_) {}
  Topology topo_;
  UpDownRouting routing_;
};

TEST_F(GroupTablesTest, CircuitOrdersByIncreasingId) {
  CircuitTable c({9, 3, 12, 7});
  EXPECT_EQ(c.order(), (std::vector<HostId>{3, 7, 9, 12}));
  EXPECT_EQ(c.lowest(), 3);
  EXPECT_EQ(c.highest(), 12);
  EXPECT_EQ(c.next(3), 7);
  EXPECT_EQ(c.next(9), 12);
  EXPECT_EQ(c.next(12), 3);  // wrap-around: the one ID reversal
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(8));
  EXPECT_THROW(c.next(8), std::invalid_argument);
}

TEST_F(GroupTablesTest, CircuitRejectsBadGroups) {
  EXPECT_THROW(CircuitTable(std::vector<HostId>{}), std::invalid_argument);
  EXPECT_THROW(CircuitTable(std::vector<HostId>{1, 1}), std::invalid_argument);
}

TEST_F(GroupTablesTest, CircuitHopLengthSumsLegs) {
  CircuitTable c({0, 1});
  const int expected = routing_.hop_count(0, 1) + routing_.hop_count(1, 0);
  EXPECT_EQ(c.circuit_hop_length(routing_), expected);
  EXPECT_EQ(CircuitTable({5}).circuit_hop_length(routing_), 0);
}

TEST_F(GroupTablesTest, TreeRootIsLowestAndParentsHaveLowerIds) {
  TreeTable t({11, 2, 8, 5, 14}, routing_);
  EXPECT_EQ(t.root(), 2);
  EXPECT_EQ(t.parent(2), kNoHost);
  for (const HostId m : t.members()) {
    if (m == t.root()) continue;
    EXPECT_LT(t.parent(m), m) << "child " << m;
    // Child lists are consistent with parents.
    const auto& sibs = t.children(t.parent(m));
    EXPECT_NE(std::find(sibs.begin(), sibs.end(), m), sibs.end());
  }
}

TEST_F(GroupTablesTest, TreeSpansAllMembers) {
  TreeTable t({0, 3, 6, 9, 12, 15}, routing_);
  int reached = 0;
  std::vector<HostId> stack{t.root()};
  while (!stack.empty()) {
    const HostId h = stack.back();
    stack.pop_back();
    ++reached;
    for (const HostId c : t.children(h)) stack.push_back(c);
  }
  EXPECT_EQ(reached, t.size());
}

TEST_F(GroupTablesTest, FanoutCapIsRespected) {
  TreeTable t({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, routing_, /*max_fanout=*/2);
  for (const HostId m : t.members())
    EXPECT_LE(t.children(m).size(), 2u);
  EXPECT_GE(t.depth(), 2);  // 10 members in a binary tree need depth >= 3
}

TEST_F(GroupTablesTest, UnlimitedFanoutGivesShallowerOrEqualTree) {
  const std::vector<HostId> members{0, 2, 4, 6, 8, 10, 12, 14};
  TreeTable capped(members, routing_, 2);
  TreeTable open(members, routing_, 0);
  EXPECT_LE(open.depth(), capped.depth());
}

TEST_F(GroupTablesTest, ChildrenAscendById) {
  TreeTable t({0, 1, 2, 3, 4, 5, 6, 7}, routing_);
  for (const HostId m : t.members()) {
    const auto& kids = t.children(m);
    EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end()));
  }
}

TEST_F(GroupTablesTest, GroupTablesLookups) {
  MulticastGroupSpec g0{0, {1, 4, 7}};
  MulticastGroupSpec g1{1, {0, 2, 4, 6}};
  GroupTables tables({g0, g1}, routing_);
  EXPECT_EQ(tables.group_size(0), 3);
  EXPECT_EQ(tables.group_size(1), 4);
  EXPECT_TRUE(tables.is_member(0, 4));
  EXPECT_FALSE(tables.is_member(0, 0));
  EXPECT_EQ(tables.tree(1).root(), 0);
  EXPECT_EQ(tables.circuit(0).lowest(), 1);
  EXPECT_THROW(tables.circuit(9), std::invalid_argument);
}

TEST_F(GroupTablesTest, SingleMemberGroup) {
  TreeTable t({5}, routing_);
  EXPECT_EQ(t.root(), 5);
  EXPECT_TRUE(t.children(5).empty());
  EXPECT_EQ(t.depth(), 0);
}

// --- in-place repair (crash-stop member removal) ----------------------------

TEST_F(GroupTablesTest, CircuitRemoveSplicesInOrder) {
  CircuitTable c({3, 7, 9, 12});
  EXPECT_TRUE(c.remove(9));
  EXPECT_EQ(c.order(), (std::vector<HostId>{3, 7, 12}));
  EXPECT_EQ(c.next(7), 12);  // predecessor re-linked past the dead member
  EXPECT_EQ(c.next(12), 3);  // the single wrap reversal survives
  EXPECT_FALSE(c.remove(9));  // not a member any more
  EXPECT_TRUE(c.remove(12));  // removing the highest moves the wrap
  EXPECT_EQ(c.next(7), 3);
}

TEST_F(GroupTablesTest, TreeRemoveMemberKeepsParentIdInvariant) {
  TreeTable t({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, routing_, /*max_fanout=*/2);
  // Pick an internal member so subtrees actually re-parent.
  HostId victim = kNoHost;
  for (const HostId m : t.members())
    if (m != t.root() && !t.children(m).empty()) victim = m;
  ASSERT_NE(victim, kNoHost);
  const auto orphans = t.children(victim);

  const TreeTable::RemovalResult r = t.remove_member(victim, routing_, 2);
  ASSERT_TRUE(r.removed);
  EXPECT_FALSE(r.root_promoted);
  EXPECT_EQ(r.subtrees_reparented, static_cast<int>(orphans.size()));
  EXPECT_EQ(r.reattached.size(), orphans.size());
  EXPECT_FALSE(t.contains(victim));
  for (const auto& [orphan, parent] : r.reattached) {
    EXPECT_LT(parent, orphan) << "adopter must keep parent-ID < child-ID";
    EXPECT_EQ(t.parent(orphan), parent);
  }
  // Global invariants after repair: spanning, parents below children.
  int reached = 0;
  std::vector<HostId> stack{t.root()};
  while (!stack.empty()) {
    const HostId h = stack.back();
    stack.pop_back();
    ++reached;
    for (const HostId c : t.children(h)) {
      EXPECT_LT(h, c);
      stack.push_back(c);
    }
  }
  EXPECT_EQ(reached, t.size());
}

TEST_F(GroupTablesTest, TreeRootRemovalPromotesLowestSurvivor) {
  TreeTable t({2, 5, 8, 11, 14}, routing_);
  ASSERT_EQ(t.root(), 2);
  const TreeTable::RemovalResult r = t.remove_member(2, routing_, 0);
  ASSERT_TRUE(r.removed);
  EXPECT_TRUE(r.root_promoted);
  EXPECT_EQ(t.root(), 5);
  EXPECT_EQ(t.parent(5), kNoHost);
  for (const HostId m : t.members())
    if (m != t.root()) EXPECT_LT(t.parent(m), m);
}

TEST_F(GroupTablesTest, GroupTablesRemoveMemberRepairsEveryGroup) {
  MulticastGroupSpec g0{0, {1, 4, 7}};
  MulticastGroupSpec g1{1, {0, 2, 4, 6}};
  MulticastGroupSpec solo{2, {4}};
  GroupTables tables({g0, g1, solo}, routing_);

  const GroupTables::RepairStats stats = tables.remove_member(4);
  // Spliced out of both real groups; the sole-member group is left intact
  // (nothing to repair, no surviving sender).
  EXPECT_EQ(stats.circuits_spliced, 2);
  EXPECT_EQ(tables.circuit(0).order(), (std::vector<HostId>{1, 7}));
  EXPECT_FALSE(tables.circuit(1).contains(4));
  EXPECT_FALSE(tables.tree(1).contains(4));
  EXPECT_TRUE(tables.circuit(2).contains(4));
  // Every reattachment record is tagged with its group and names a
  // surviving adopter.
  for (const auto& r : stats.reattachments) {
    EXPECT_NE(r.group, kNoGroup);
    EXPECT_LT(r.new_parent, r.orphan);
    EXPECT_TRUE(tables.tree(r.group).contains(r.new_parent));
  }
}

// --- in-place join (dynamic membership splice-in) ---------------------------

TEST_F(GroupTablesTest, CircuitInsertSplicesAtSortedPosition) {
  CircuitTable c({3, 7, 12});
  EXPECT_EQ(c.insert(9), 7);  // 7's successor changes from 12 to 9
  EXPECT_EQ(c.order(), (std::vector<HostId>{3, 7, 9, 12}));
  EXPECT_EQ(c.next(7), 9);
  EXPECT_EQ(c.next(9), 12);
  EXPECT_EQ(c.insert(9), kNoHost);  // already a member: no-op
  // Inserting below the lowest: the highest member's wrap edge retargets.
  EXPECT_EQ(c.insert(1), 12);
  EXPECT_EQ(c.order(), (std::vector<HostId>{1, 3, 7, 9, 12}));
  EXPECT_EQ(c.next(12), 1);
  // Inserting above the highest: the wrap moves onto the joiner.
  EXPECT_EQ(c.insert(14), 12);
  EXPECT_EQ(c.next(12), 14);
  EXPECT_EQ(c.next(14), 1);
}

TEST_F(GroupTablesTest, TreeAddMemberAttachesWithoutMovingEdges) {
  TreeTable t({2, 5, 8, 11}, routing_, /*max_fanout=*/2);
  std::unordered_map<HostId, HostId> before;
  for (const HostId m : t.members()) before[m] = t.parent(m);

  const TreeTable::AddResult r = t.add_member(9, routing_, 2);
  ASSERT_TRUE(r.added);
  EXPECT_FALSE(r.became_root);
  EXPECT_LT(r.parent, 9) << "greedy attach must keep parent-ID < child-ID";
  EXPECT_EQ(t.parent(9), r.parent);
  EXPECT_TRUE(t.contains(9));
  EXPECT_EQ(t.size(), 5);
  // Incremental: no existing member's parent changed.
  for (const auto& [m, p] : before) EXPECT_EQ(t.parent(m), p);
  // Idempotent on re-add.
  EXPECT_FALSE(t.add_member(9, routing_, 2).added);
}

TEST_F(GroupTablesTest, TreeAddMemberBelowRootAdoptsNewRoot) {
  TreeTable t({4, 6, 10}, routing_);
  ASSERT_EQ(t.root(), 4);
  const TreeTable::AddResult r = t.add_member(1, routing_, 0);
  ASSERT_TRUE(r.added);
  EXPECT_TRUE(r.became_root);
  EXPECT_EQ(t.root(), 1);
  EXPECT_EQ(t.parent(1), kNoHost);
  // The old root is the new root's only child; nobody else re-parented.
  EXPECT_EQ(t.parent(4), 1);
  EXPECT_EQ(t.children(1), (std::vector<HostId>{4}));
  for (const HostId m : t.members())
    if (m != t.root()) EXPECT_LT(t.parent(m), m);
}

TEST_F(GroupTablesTest, GroupTablesAddMemberSplicesCircuitAndTree) {
  MulticastGroupSpec g0{0, {1, 4, 7}};
  GroupTables tables({g0}, routing_);

  const GroupTables::JoinResult r = tables.add_member(0, 5);
  ASSERT_TRUE(r.joined);
  EXPECT_EQ(r.circuit_pred, 4);
  EXPECT_TRUE(tables.is_member(0, 5));
  EXPECT_EQ(tables.circuit(0).order(), (std::vector<HostId>{1, 4, 5, 7}));
  EXPECT_TRUE(tables.tree(0).contains(5));
  EXPECT_LT(tables.tree(0).parent(5), 5);
  // Re-join after a voluntary leave restores membership cleanly.
  tables.remove_member_from(0, 5);
  EXPECT_FALSE(tables.is_member(0, 5));
  const GroupTables::JoinResult again = tables.add_member(0, 5);
  EXPECT_TRUE(again.joined);
  EXPECT_EQ(tables.circuit(0).order(), (std::vector<HostId>{1, 4, 5, 7}));
  // Already a member: idempotent no-op.
  EXPECT_FALSE(tables.add_member(0, 5).joined);
}

}  // namespace
}  // namespace wormcast
