// Figure 10: average multicast latency vs offered load on an 8x8 torus.
//
// Paper setup (Section 7.1): 64 hosts, 10 multicast groups of 10 random
// members, multicast proportion 0.10, Poisson arrivals, geometric worm
// lengths with mean 400 bytes. The x-axis is the *output-link utilization
// per host*, which includes the forwarded multicast copies (with group
// size 10 and proportion 0.10 the transmitted traffic is ~1.8x the
// generated traffic); we sweep the generation-rate knob and report the
// measured utilization like the paper does. Three schemes: Hamiltonian
// circuit store-and-forward, Hamiltonian circuit cut-through, rooted tree
// store-and-forward.
//
// Expected shape (paper): tree < Hamiltonian-S&F everywhere; Hamiltonian
// cut-through is lowest at light load and loses its edge at heavier load
// (converging to S&F); latencies blow up approaching saturation
// (~0.11-0.12 utilization).
//
// The sweep runs (load, scheme) points on a SweepRunner pool (--jobs N);
// each point is an independent Network, and the CSV/JSON rows are
// bit-identical at any job count.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

struct Point {
  double utilization = 0.0;
  double latency = 0.0;
};

Point run_point(Scheme scheme, double gen_load, std::uint64_t seed, Time warmup,
                Time measure) {
  RandomStream group_rng(900 + seed);  // same groups for all schemes/loads
  auto groups = make_random_groups(10, 10, 64, group_rng);
  ExperimentConfig cfg = bench::sim_defaults(scheme, gen_load, 0.10, seed);
  Network net(make_torus(8, 8), std::move(groups), cfg);
  net.run(warmup, measure, /*drain_cap=*/100'000);
  const auto s = net.summary();
  return Point{s.measured_utilization, s.mcast_latency_mean};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time warmup = args.quick ? 20'000 : 50'000;
  const Time measure = args.quick ? 60'000 : 200'000;

  std::printf("# Figure 10: average multicast latency (byte-times) vs offered "
              "load, 8x8 torus\n");
  std::printf("# 10 groups x 10 members, multicast proportion 0.10, mean worm "
              "400 B\n");
  std::printf("# columns: per-scheme (measured output-link utilization, "
              "latency)\n");
  bench::print_header("gen_load",
                      {"util_hc_sf", "lat_hc_sf", "util_hc_ct", "lat_hc_ct",
                       "util_tree", "lat_tree"});
  const std::vector<double> loads =
      args.quick ? std::vector<double>{0.025, 0.045, 0.06}
                 : std::vector<double>{0.022, 0.028, 0.034, 0.040, 0.046,
                                       0.052, 0.058, 0.062, 0.066};
  // The paper's "rooted tree" curve is the broadcast-on-tree variant
  // (Section 6's lower-latency alternative; store-and-forward at each
  // member, two buffer classes, no total ordering).
  const std::vector<Scheme> schemes = {
      Scheme::kHamiltonianSF, Scheme::kHamiltonianCT, Scheme::kTreeBroadcast};

  const std::size_t n_points = loads.size() * schemes.size();
  bench::JsonBench json("fig10_torus_latency");
  json.resize_rows(loads.size());
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<Point> results(n_points);
  const auto walls = pool.run_indexed(n_points, [&](std::size_t i) {
    results[i] = run_point(schemes[i % schemes.size()],
                           loads[i / schemes.size()], 1, warmup, measure);
  });

  for (std::size_t l = 0; l < loads.size(); ++l) {
    const Point& sf = results[l * schemes.size()];
    const Point& ct = results[l * schemes.size() + 1];
    const Point& tr = results[l * schemes.size() + 2];
    std::printf("%.3f,%.3f,%.0f,%.3f,%.0f,%.3f,%.0f\n", loads[l],
                sf.utilization, sf.latency, ct.utilization, ct.latency,
                tr.utilization, tr.latency);
    json.set_row(l, {{"gen_load", loads[l]},
                     {"util_hc_sf", sf.utilization},
                     {"lat_hc_sf", sf.latency},
                     {"util_hc_ct", ct.utilization},
                     {"lat_hc_ct", ct.latency},
                     {"util_tree", tr.utilization},
                     {"lat_tree", tr.latency}});
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.write();
  return 0;
}
