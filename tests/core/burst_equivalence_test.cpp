// Burst-mode channels (the simulation hot path) must be a pure performance
// optimization: every observable result — summary counters, latency sample
// streams, fault sequences, per-adapter counters — must be bit-for-bit
// identical to per-byte stepping. These tests run the same experiment twice,
// once with FabricConfig::burst_channels on and once off, across schemes,
// topologies, load levels and armed fault injectors, and require equality.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

struct RunResult {
  Network::Summary summary;
  std::vector<double> mcast_latency;
  std::vector<double> mcast_completion;
  std::vector<double> unicast_latency;
  std::int64_t adapter_worms_received = 0;
  std::int64_t adapter_payload_bytes = 0;
  std::int64_t adapter_worms_truncated = 0;
  Time end_time = 0;
};

void collect(Network& net, RunResult& r) {
  r.summary = net.summary();
  r.mcast_latency = net.metrics().mcast_latency().sorted_values();
  r.mcast_completion = net.metrics().mcast_completion().sorted_values();
  r.unicast_latency = net.metrics().unicast_latency().sorted_values();
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    r.adapter_worms_received += net.adapter(h).worms_received();
    r.adapter_payload_bytes += net.adapter(h).payload_bytes_received();
    r.adapter_worms_truncated += net.adapter(h).worms_truncated();
  }
  r.end_time = net.sim().now();
}

RunResult run_traffic(ExperimentConfig cfg, Topology topo, int group_size,
                      bool burst) {
  cfg.fabric.burst_channels = burst;
  MulticastGroupSpec group;
  group.id = 0;
  for (HostId h = 0; h < group_size; ++h) group.members.push_back(h);
  Network net(std::move(topo), {group}, cfg);
  net.run(/*warmup=*/2'000, /*measure=*/30'000, /*drain_cap=*/300'000);
  RunResult r;
  collect(net, r);
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  const Network::Summary& sa = a.summary;
  const Network::Summary& sb = b.summary;
  // Integer byte-time sums give bitwise-identical doubles on identical runs.
  EXPECT_EQ(sa.measured_utilization, sb.measured_utilization);
  EXPECT_EQ(sa.mcast_latency_mean, sb.mcast_latency_mean);
  EXPECT_EQ(sa.mcast_latency_p95, sb.mcast_latency_p95);
  EXPECT_EQ(sa.mcast_completion_mean, sb.mcast_completion_mean);
  EXPECT_EQ(sa.unicast_latency_mean, sb.unicast_latency_mean);
  EXPECT_EQ(sa.throughput_per_host, sb.throughput_per_host);
  EXPECT_EQ(sa.messages, sb.messages);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.nacks, sb.nacks);
  EXPECT_EQ(sa.retransmits, sb.retransmits);
  EXPECT_EQ(sa.outstanding, sb.outstanding);
  EXPECT_EQ(sa.oldest_outstanding_age, sb.oldest_outstanding_age);
  EXPECT_EQ(sa.fabric_overflows, sb.fabric_overflows);
  EXPECT_EQ(sa.faults_injected, sb.faults_injected);
  EXPECT_EQ(sa.bytes_swallowed, sb.bytes_swallowed);
  EXPECT_EQ(sa.ack_timeouts, sb.ack_timeouts);
  EXPECT_EQ(sa.duplicates_suppressed, sb.duplicates_suppressed);
  EXPECT_EQ(sa.deliveries_failed, sb.deliveries_failed);
  EXPECT_EQ(sa.messages_completed, sb.messages_completed);
  EXPECT_EQ(sa.unicasts_flushed, sb.unicasts_flushed);
  // Whole sample streams, not just their moments.
  EXPECT_EQ(a.mcast_latency, b.mcast_latency);
  EXPECT_EQ(a.mcast_completion, b.mcast_completion);
  EXPECT_EQ(a.unicast_latency, b.unicast_latency);
  EXPECT_EQ(a.adapter_worms_received, b.adapter_worms_received);
  EXPECT_EQ(a.adapter_payload_bytes, b.adapter_payload_bytes);
  EXPECT_EQ(a.adapter_worms_truncated, b.adapter_worms_truncated);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(BurstEquivalence, StoreAndForwardUnderBackpressure) {
  // High offered load on the small testbed exercises STOP/GO constantly.
  for (const std::uint64_t seed : {1ull, 7ull}) {
    ExperimentConfig cfg;
    cfg.protocol.scheme = Scheme::kHamiltonianSF;
    cfg.traffic.offered_load = 0.30;
    cfg.traffic.multicast_fraction = 0.3;
    cfg.seed = seed;
    const RunResult a = run_traffic(cfg, make_myrinet_testbed(), 8, true);
    const RunResult b = run_traffic(cfg, make_myrinet_testbed(), 8, false);
    expect_identical(a, b);
    EXPECT_GT(a.summary.messages_completed, 0);
  }
}

TEST(BurstEquivalence, CutThroughForwarding) {
  // Cut-through plans stream payload from in-progress receptions: the
  // logical-arrival accounting on both the RX and TX side is on trial here.
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianCT;
  cfg.traffic.offered_load = 0.15;
  cfg.traffic.multicast_fraction = 0.5;
  cfg.seed = 42;
  const RunResult a = run_traffic(cfg, make_myrinet_testbed(), 8, true);
  const RunResult b = run_traffic(cfg, make_myrinet_testbed(), 8, false);
  expect_identical(a, b);
  EXPECT_GT(a.summary.messages_completed, 0);
}

TEST(BurstEquivalence, TreeSchemeOnTorus) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kTreeCT;
  cfg.traffic.offered_load = 0.10;
  cfg.traffic.multicast_fraction = 0.4;
  cfg.seed = 3;
  const RunResult a = run_traffic(cfg, make_torus(4, 4), 8, true);
  const RunResult b = run_traffic(cfg, make_torus(4, 4), 8, false);
  expect_identical(a, b);
  EXPECT_GT(a.summary.messages_completed, 0);
}

TEST(BurstEquivalence, ArmedFaultInjector) {
  // Keyed fault draws must fire on the same worms at the same times in both
  // modes; truncation boundaries and swallowed runs must account equally.
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.ack_timeout = 20'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.faults.worm_kill_rate = 0.05;
  cfg.faults.ctrl_loss_rate = 0.05;
  cfg.faults.rx_drop_rate = 0.02;
  cfg.traffic.offered_load = 0.05;
  cfg.traffic.multicast_fraction = 0.3;
  cfg.seed = 1234;
  const RunResult a = run_traffic(cfg, make_myrinet_testbed(), 8, true);
  const RunResult b = run_traffic(cfg, make_myrinet_testbed(), 8, false);
  expect_identical(a, b);
  EXPECT_GT(a.summary.faults_injected, 0)
      << "scenario must actually exercise faults";
  EXPECT_GT(a.summary.bytes_swallowed, 0);
}

TEST(BurstEquivalence, SwitchLevelMulticast) {
  // Switch-level multicast worms are excluded from bursts by design, but
  // they share ports and slack buffers with unicast traffic that does burst.
  for (const bool burst : {true, false}) {
    ExperimentConfig cfg;
    cfg.fabric.burst_channels = burst;
    // No run(): the generator never starts; traffic is the explicit sends.
    cfg.seed = 9;
    MulticastGroupSpec group;
    group.id = 0;
    for (HostId h = 0; h < 6; ++h) group.members.push_back(h);
    static RunResult first;
    Network net(make_myrinet_testbed(), {group}, cfg);
    // Two concurrent switch-level multicasts deadlock in the fabric (each
    // holds output ports the other needs — the hazard that motivates the
    // paper's software protocols), so the broadcast runs in a second phase.
    net.send_switch_multicast(0, 0, 512);
    for (HostId h = 0; h < 4; ++h) {
      Demand d;
      d.src = h;
      d.dst = static_cast<HostId>(7 - h);
      d.length = 800;
      net.inject(d);
    }
    net.run_to_quiescence();
    net.send_switch_broadcast(3, 256);
    for (HostId h = 4; h < 6; ++h) {
      Demand d;
      d.src = h;
      d.dst = static_cast<HostId>(7 - h);
      d.length = 800;
      net.inject(d);
    }
    net.run_to_quiescence();
    RunResult r;
    collect(net, r);
    if (burst) {
      first = r;
    } else {
      // The quiescence end time may differ by lingering self-scheduled pump
      // events; every delivered byte and sample must not.
      first.end_time = r.end_time;
      expect_identical(first, r);
      EXPECT_GT(r.adapter_worms_received, 0);
    }
  }
}

}  // namespace
}  // namespace wormcast
