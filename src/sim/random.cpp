#include "sim/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wormcast {

std::uint64_t RandomStream::seed_mix(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the combined value; good avalanche, cheap.
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Time RandomStream::exp_interval(double mean) {
  assert(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  const double gap = dist(engine_);
  return std::max<Time>(1, static_cast<Time>(std::llround(gap)));
}

std::int64_t RandomStream::geometric_length(double mean, std::int64_t min_len) {
  assert(mean > static_cast<double>(min_len));
  // Geometric over {min_len, min_len+1, ...} with the requested mean:
  // success probability p = 1 / (mean - min_len + 1).
  const double p = 1.0 / (mean - static_cast<double>(min_len) + 1.0);
  std::geometric_distribution<std::int64_t> dist(p);
  return min_len + dist(engine_);
}

std::int64_t RandomStream::uniform(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool RandomStream::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::uint64_t RandomStream::keyed_hash(std::uint64_t k1, std::uint64_t k2,
                                       std::uint64_t k3) const {
  // Three chained finalizer rounds; each key fully avalanches before the
  // next mixes in, so (1, 0) and (0, 1) land far apart.
  return seed_mix(seed_mix(seed_mix(seed_, k1), k2), k3);
}

bool RandomStream::keyed_chance(double p, std::uint64_t k1, std::uint64_t k2,
                                std::uint64_t k3) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // Top 53 bits as a uniform double in [0, 1).
  const double u =
      static_cast<double>(keyed_hash(k1, k2, k3) >> 11) * 0x1.0p-53;
  return u < p;
}

std::int64_t RandomStream::keyed_uniform(std::int64_t lo, std::int64_t hi,
                                         std::uint64_t k1, std::uint64_t k2,
                                         std::uint64_t k3) const {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(keyed_hash(k1, k2, k3) % span);
}

}  // namespace wormcast
