file(REMOVE_RECURSE
  "libwormcast_core.a"
)
