file(REMOVE_RECURSE
  "CMakeFiles/ablation_switch_mcast.dir/ablation_switch_mcast.cpp.o"
  "CMakeFiles/ablation_switch_mcast.dir/ablation_switch_mcast.cpp.o.d"
  "ablation_switch_mcast"
  "ablation_switch_mcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switch_mcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
