// Shared helpers for the figure-regeneration benches.
//
// Each bench binary regenerates one figure of the paper: it sweeps the
// figure's x-axis, runs the simulator at each point, and prints the same
// series the paper plots as CSV rows (plus a human-readable header).
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/network.h"

namespace wormcast::bench {

/// Prints a CSV header line: x_name,series1,series2,...
inline void print_header(const std::string& x_name,
                         const std::vector<std::string>& series) {
  std::printf("%s", x_name.c_str());
  for (const auto& s : series) std::printf(",%s", s.c_str());
  std::printf("\n");
}

/// Common experiment defaults shared by the simulation figures
/// (Section 7.1): geometric worm lengths with mean 400 bytes.
inline ExperimentConfig sim_defaults(Scheme scheme, double load,
                                     double mcast_fraction,
                                     std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.traffic.offered_load = load;
  cfg.traffic.multicast_fraction = mcast_fraction;
  cfg.traffic.mean_worm_len = 400.0;
  // Ample forwarding buffers: the paper's simulations study latency, not
  // loss; reservations virtually always succeed (NACKs stay possible).
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.seed = seed;
  return cfg;
}

/// Arms the network's deadlock watchdog with a bench-appropriate interval:
/// a sweep point that wedges (faulted run, pathological config) dumps its
/// per-host state to stderr instead of spinning silently until the job
/// timeout. Bounded runs only — the armed watchdog keeps the simulator
/// non-idle, so never pair it with run_to_quiescence().
inline DeadlockWatchdog& arm_watchdog(Network& net, Time interval = 250'000) {
  return net.attach_watchdog(interval);
}

/// Wraps a statistic whose sample set may be empty: `has == false` turns
/// the JSON cell into an explicit null instead of a fake zero.
inline std::optional<double> opt(double v, bool has) {
  return has ? std::optional<double>(v) : std::nullopt;
}

/// Accumulates numeric result rows and writes them as BENCH_<name>.json —
/// a machine-readable mirror of the CSV stdout so CI and plotting scripts
/// need not parse the human-oriented format. A nullopt cell serializes as
/// JSON null (a statistic over zero samples is not a measurement).
class JsonBench {
 public:
  explicit JsonBench(std::string name) : name_(std::move(name)) {}

  void add_row(std::vector<std::pair<std::string, std::optional<double>>> kv) {
    rows_.push_back(std::move(kv));
  }

  /// Attaches a uniform counter dump (see CounterRegistry::snapshot()),
  /// serialized once as a top-level "counters" object.
  void set_counters(std::vector<std::pair<std::string, double>> counters) {
    counters_ = std::move(counters);
  }

  /// Writes BENCH_<name>.json in the current directory.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "# could not write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", name_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": ", i == 0 ? "" : ", ",
                     rows_[r][i].first.c_str());
        if (rows_[r][i].second.has_value())
          std::fprintf(f, "%.6g", *rows_[r][i].second);
        else
          std::fprintf(f, "null");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]");
    if (!counters_.empty()) {
      std::fprintf(f, ", \"counters\": {");
      for (std::size_t i = 0; i < counters_.size(); ++i)
        std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                     counters_[i].first.c_str(), counters_[i].second);
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::optional<double>>>> rows_;
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace wormcast::bench
