#include "core/protocol_config.h"

#include <algorithm>

namespace wormcast {

Time retry_backoff_delay(const ProtocolConfig& config, int prior_attempts,
                         RandomStream& rng) {
  const int exponent = std::min(prior_attempts, 4);
  return config.retry_backoff * (Time{1} << exponent) +
         (config.retry_jitter > 0 ? rng.uniform(0, config.retry_jitter) : 0);
}

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kRepeatedUnicast: return "repeated-unicast";
    case Scheme::kHamiltonianSF: return "hamiltonian-sf";
    case Scheme::kHamiltonianCT: return "hamiltonian-ct";
    case Scheme::kTreeSF: return "tree-sf";
    case Scheme::kTreeCT: return "tree-ct";
    case Scheme::kTreeBroadcast: return "tree-broadcast";
    case Scheme::kCentralizedCredit: return "centralized-credit";
  }
  return "unknown";
}

}  // namespace wormcast
