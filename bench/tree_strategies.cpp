// Tree-strategy ablation sweep (Issue 8 tentpole).
//
// Section 3 serializes every switch-level multicast through one spanning
// tree: the root switch carries a share of every worm. This bench measures
// how the pluggable strategies spread that load: for each topology x group
// shape x strategy it drives a fixed, deterministic burst of switch-level
// multicasts through an otherwise idle fabric and reports
//
//   throughput          delivered payload bytes per byte-time
//   completion_mean     whole-group completion latency (byte-times)
//   peak_switch_share   hottest switch's share of measured egress bytes
//   root_share          the general up/down root's share of that egress
//   stretch             mean planned path length / shortest legal path
//   worms_per_mcast     partitions (worms) per multicast plan
//
// All strategies run under the interrupt switch scheme (scheme (b)): the
// load-aware planner emits off-tree branches and the multi-root planner
// mixes trees, either of which voids idle-fill's single-tree deadlock
// argument; interrupt fragments stay deadlock-safe on any legal up/down
// path set. Send schedules, group draws and irregular topologies are pure
// functions of the point index, so rows are bit-identical at any --jobs.
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

constexpr std::uint64_t kBaseSeed = 29;
constexpr std::int64_t kPayload = 1'024;
constexpr Time kSendGap = 600;        // byte-times between successive sends
constexpr Time kPhaseDrain = 400'000; // settle budget after each burst

struct TopoSpec {
  const char* name;
  int approx_hosts;  // documentation only
};
constexpr TopoSpec kTopos[] = {
    {"torus8x8", 64},
    {"shufflenet23", 24},
    {"rmesh16", 16},
};

struct GroupShape {
  int size;
  int count;
};
constexpr GroupShape kShapes[] = {{8, 4}, {8, 12}, {16, 4}, {16, 12}};
constexpr GroupShape kQuickShapes[] = {{8, 4}};

constexpr TreeStrategyKind kStrategies[] = {
    TreeStrategyKind::kSingleRoot,
    TreeStrategyKind::kPartitionMerge,
    TreeStrategyKind::kLoadAware,
    TreeStrategyKind::kMultiRoot,
};

Topology build_topo(int t, std::uint64_t shape_seed) {
  switch (t) {
    case 0:
      return make_torus(8, 8);
    case 1:
      return make_bidir_shufflenet(2, 3);
    default: {
      // Same irregular mesh for every strategy at this (shape, rep):
      // seeded by the shape, never by the strategy, or the comparison
      // would be across different fabrics.
      RandomStream rng(RandomStream::seed_mix(0x7EE57090ull, shape_seed));
      return make_random_mesh(16, 3.0, rng);
    }
  }
}

/// Depth (ports traversed from the source's switch, host link included) of
/// every host delivered by `t`, starting at switch `at`.
void walk_branch(const Topology& topo, NodeId at, const McastRouteTree& t,
                 int depth, std::unordered_map<HostId, int>* out) {
  const NodeId next = topo.neighbor_via(at, t.port);
  const TopoNode& nn = topo.node(next);
  if (nn.kind == NodeKind::kHost) {
    (*out)[nn.host] = depth + 1;
    return;
  }
  for (const McastRouteTree& c : t.children)
    walk_branch(topo, next, c, depth + 1, out);
}

struct PointResult {
  double throughput = 0.0;
  double completion_mean = 0.0;
  bool has_completion = false;
  double peak_switch_share = 0.0;
  double root_share = 0.0;
  double stretch = 0.0;
  double worms_per_mcast = 0.0;
  std::int64_t outstanding = 0;
};

PointResult run_point(int topo_idx, GroupShape shape, TreeStrategyKind strat,
                      int rep, int rounds, std::uint64_t seed,
                      std::size_t trace_cap, bench::CheckCollector& checks,
                      std::size_t slot, const std::string& label) {
  const std::uint64_t shape_seed =
      RandomStream::seed_mix(kBaseSeed, (std::uint64_t(topo_idx) << 16) |
                              (std::uint64_t(shape.size) << 8) |
                              std::uint64_t(shape.count)) +
      std::uint64_t(rep);
  Topology topo = build_topo(topo_idx, shape_seed);
  const int n_hosts = topo.num_hosts();
  const int gsize = shape.size < n_hosts ? shape.size : n_hosts;
  RandomStream grng(RandomStream::seed_mix(shape_seed, 0x6709ull));
  std::vector<MulticastGroupSpec> groups =
      make_random_groups(shape.count, gsize, n_hosts, grng);

  ExperimentConfig cfg;
  cfg.switch_mcast.scheme = SwitchMcastScheme::kInterrupt;
  cfg.tree.kind = strat;
  cfg.seed = seed;
  Network net(std::move(topo), groups, cfg);
  if (checks.enabled()) net.enable_tracing(trace_cap);
  bench::arm_watchdog(net);

  const Topology& t = net.topology();
  const int n_groups = static_cast<int>(groups.size());
  const auto src_of = [&](int round, GroupId g) {
    const auto& order = net.tables().circuit(g).order();
    return order[std::size_t(round) % order.size()];
  };

  // Priming burst: two rounds so the load-aware probe sees real forwarding
  // bytes before it re-plans. Excluded from the measurement window.
  Time now = 0;
  for (int r = 0; r < 2; ++r)
    for (GroupId g = 0; g < n_groups; ++g) {
      const HostId src = src_of(r, g);
      net.sim().at(now, [&net, src, g] {
        (void)net.send_switch_multicast(src, g, kPayload);
      });
      now += kSendGap;
    }
  const Time t0 = now + kPhaseDrain;
  net.run_until(t0);
  (void)net.replan_trees();

  // Egress baseline at the window start, per switch.
  std::vector<std::int64_t> base(static_cast<std::size_t>(t.num_nodes()), 0);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    if (t.node(n).kind == NodeKind::kSwitch)
      base[std::size_t(n)] = net.fabric().node_egress_bytes(n);
  net.metrics().set_window_start(t0);

  // Measured burst: `rounds` rounds, every group sends once per round from
  // a rotating member, sends kSendGap apart (dense enough to overlap).
  now = t0;
  std::int64_t expected_payload = 0;
  for (int r = 0; r < rounds; ++r)
    for (GroupId g = 0; g < n_groups; ++g) {
      const HostId src = src_of(r + 2, g);
      net.sim().at(now, [&net, src, g] {
        (void)net.send_switch_multicast(src, g, kPayload);
      });
      now += kSendGap;
      expected_payload +=
          kPayload * (net.tables().circuit(g).size() - 1);
    }
  // Adaptive drain: the heaviest shapes are congestion-bound, not stuck, so
  // keep extending the window while messages are still completing. A true
  // deadlock makes no progress and exits after one extra chunk (and trips
  // the watchdog); only then does the point flag OUTSTANDING.
  net.run_until(now + kPhaseDrain);
  for (int chunk = 0; chunk < 16 && net.metrics().outstanding() > 0; ++chunk) {
    const std::int64_t before = net.metrics().outstanding();
    net.run_until(net.sim().now() + kPhaseDrain);
    if (net.metrics().outstanding() >= before) break;  // no progress: stuck
  }

  PointResult out;
  out.outstanding =
      static_cast<std::int64_t>(net.metrics().outstanding_messages().size());
  const Time t_end = net.metrics().last_completion_time();
  if (t_end > t0)
    out.throughput = static_cast<double>(net.metrics().payload_delivered()) /
                     static_cast<double>(t_end - t0);
  const SampleSet& comp = net.metrics().mcast_completion();
  out.has_completion = comp.count() > 0;
  out.completion_mean = comp.mean();

  std::int64_t total = 0, peak = 0, root_bytes = 0;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.node(n).kind != NodeKind::kSwitch) continue;
    const std::int64_t d = net.fabric().node_egress_bytes(n) - base[std::size_t(n)];
    total += d;
    if (d > peak) peak = d;
    if (n == net.routing().root()) root_bytes = d;
  }
  if (total > 0) {
    out.peak_switch_share = static_cast<double>(peak) / static_cast<double>(total);
    out.root_share = static_cast<double>(root_bytes) / static_cast<double>(total);
  }

  // Plan-shape metrics from the strategy's own plans (post-replan state).
  double stretch_sum = 0.0;
  std::int64_t stretch_n = 0, worms = 0;
  for (GroupId g = 0; g < n_groups; ++g) {
    const auto& order = net.tables().circuit(g).order();
    const HostId src = order.front();
    const McastPlan plan = net.tree_strategy().plan_multicast(g, src, order);
    worms += static_cast<std::int64_t>(plan.partitions.size());
    std::unordered_map<HostId, int> depth;
    const NodeId src_sw = t.switch_of_host(src);
    for (const McastPartition& part : plan.partitions)
      for (const McastRouteTree& b : part.branches)
        walk_branch(t, src_sw, b, 0, &depth);
    for (const auto& [dst, d] : depth) {
      const int base_ports =
          static_cast<int>(net.routing().route(src, dst).ports().size());
      if (base_ports > 0) {
        stretch_sum += static_cast<double>(d) / base_ports;
        ++stretch_n;
      }
    }
  }
  if (stretch_n > 0) out.stretch = stretch_sum / static_cast<double>(stretch_n);
  if (n_groups > 0)
    out.worms_per_mcast = static_cast<double>(worms) / n_groups;

  checks.collect(slot, net, label);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const int rounds = args.quick ? 4 : 8;
  const int n_topos = args.quick ? 2 : 3;  // quick: torus + shufflenet
  const auto* shapes = args.quick ? kQuickShapes : kShapes;
  const std::size_t n_shapes =
      args.quick ? std::size(kQuickShapes) : std::size(kShapes);
  const std::size_t trace_cap = args.check && !args.trace_cap_explicit
                                    ? bench::kCheckTraceCapacity
                                    : args.trace_cap;

  std::printf("# Tree-strategy ablation: %d rounds x group burst per point, "
              "interrupt switch scheme, payload %lld B\n",
              rounds, static_cast<long long>(kPayload));
  bench::print_header("topo,strategy,gsize,gcount,rep",
                      {"throughput", "completion_mean", "peak_switch_share",
                       "root_share", "stretch", "worms_per_mcast"});

  // --strategy restricts the sweep to one builder; per-point seeds are
  // keyed by (topo, shape, strategy, rep), so a restricted run's rows are
  // byte-identical to the same rows of the full sweep.
  std::vector<TreeStrategyKind> strategies(std::begin(kStrategies),
                                           std::end(kStrategies));
  if (args.strategy_explicit) strategies = {args.strategy};
  const std::size_t n_strats = strategies.size();
  const std::size_t n_tasks =
      std::size_t(n_topos) * n_shapes * n_strats * std::size_t(args.reps);
  bench::JsonBench json("tree_strategies");
  json.resize_rows(n_tasks);
  bench::CheckCollector checks(args.check);
  checks.resize(n_tasks);
  std::vector<PointResult> results(n_tasks);
  std::vector<std::string> point_labels(n_tasks);

  harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  const auto walls = pool.run_indexed(n_tasks, [&](std::size_t i) {
    std::size_t rem = i;
    const int rep = static_cast<int>(rem % std::size_t(args.reps));
    rem /= std::size_t(args.reps);
    const std::size_t s = rem % n_strats;
    rem /= n_strats;
    const std::size_t sh = rem % n_shapes;
    const int topo_idx = static_cast<int>(rem / n_shapes);
    const TreeStrategyKind strat = strategies[s];
    const GroupShape shape = shapes[sh];
    const std::string label =
        std::string(kTopos[topo_idx].name) + "/" + tree_strategy_name(strat) +
        "/g" + std::to_string(shape.size) + "x" + std::to_string(shape.count) +
        "/rep" + std::to_string(rep);
    point_labels[i] = label;
    const std::size_t stable_point =
        ((std::size_t(topo_idx) * 100 + std::size_t(shape.size)) * 100 +
         std::size_t(shape.count)) *
            100 +
        std::size_t(strat) * 10 + std::size_t(rep);
    const std::uint64_t seed = harness::point_seed(kBaseSeed, stable_point);
    results[i] = run_point(topo_idx, shape, strat, rep, rounds, seed,
                           trace_cap, checks, i, label);
    const PointResult& r = results[i];
    json.set_row(i, {{"topo", double(topo_idx)},
                     {"strategy", double(static_cast<int>(strat))},
                     {"group_size", double(shape.size)},
                     {"group_count", double(shape.count)},
                     {"rep", double(rep)},
                     {"throughput", r.throughput},
                     {"completion_mean",
                      bench::opt(r.completion_mean, r.has_completion)},
                     {"peak_switch_share", r.peak_switch_share},
                     {"root_share", r.root_share},
                     {"stretch", r.stretch},
                     {"worms_per_mcast", r.worms_per_mcast},
                     {"outstanding", double(r.outstanding)}});
  });

  bool lost_any = false;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const PointResult& r = results[i];
    std::printf("%s,%.4f,%.0f,%.3f,%.3f,%.3f,%.2f%s\n", point_labels[i].c_str(),
                r.throughput, r.completion_mean, r.peak_switch_share,
                r.root_share, r.stretch, r.worms_per_mcast,
                r.outstanding > 0 ? ",OUTSTANDING" : "");
    if (r.outstanding > 0) lost_any = true;
  }
  if (lost_any)
    std::fprintf(stderr, "# ERROR: some points left messages outstanding\n");

  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.set_meta("rounds", double(rounds));
  json.set_meta("reps", double(args.reps));
  const int check_rc = checks.finalize(&json);
  json.write();
  return lost_any ? 1 : check_rc;
}
