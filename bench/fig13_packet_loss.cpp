// Figure 13: packet loss rate per host vs packet size on the Section 8.2
// testbed, all-send/receive case.
//
// Loss occurs only at the adapter input buffer (the implementation has no
// reservation protocol and cannot backpressure the fabric without risking
// deadlock — the point the paper uses to motivate its schemes). Expected
// shape: significant loss whenever hosts originate as well as forward,
// growing with packet size (fewer packets fit in the ~25 KB LANai buffer);
// the single-sender case loses nothing.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time span = quick ? 3'000'000 : 12'000'000;

  std::printf("# Figure 13: packet loss per host vs packet size, all hosts "
              "sending+receiving (single-sender shown as control)\n");
  bench::print_header("packet_bytes",
                      {"loss_all_send_receive", "loss_single_sender"});
  const std::vector<std::int64_t> sizes =
      quick ? std::vector<std::int64_t>{1024, 4096, 8192}
            : std::vector<std::int64_t>{1024, 2048, 3072, 4096, 5120,
                                        6144, 7168, 8192};
  for (const std::int64_t size : sizes) {
    const auto all = bench::run_testbed(8, size, span);
    const auto single = bench::run_testbed(1, size, span);
    std::printf("%lld,%.3f,%.3f\n", static_cast<long long>(size),
                all.loss_rate, single.loss_rate);
    std::fflush(stdout);
  }
  return 0;
}
