// Deadlock detection by progress monitoring.
#pragma once

#include <functional>
#include <string>

#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

/// Watches the simulator's global progress counter. If a check interval
/// elapses during which worms are outstanding but no payload byte moved
/// anywhere, the network is declared deadlocked (wormhole deadlocks are
/// permanent: a blocked cycle never clears by itself).
///
/// The watchdog is how the ablation benches *measure* deadlock probability
/// when the paper's prevention rules are switched off, and how integration
/// tests assert that the rules eliminate the Figure 3/4/6 scenarios.
class DeadlockWatchdog {
 public:
  using OutstandingFn = std::function<std::int64_t()>;
  using OnDeadlock = std::function<void()>;
  using DiagnosticsFn = std::function<std::string()>;

  /// `outstanding` reports how many worms are still in flight; a stall only
  /// counts as deadlock while this is non-zero. `on_deadlock` fires once,
  /// at the moment of detection.
  DeadlockWatchdog(Simulator& sim, Time check_interval, OutstandingFn outstanding,
                   OnDeadlock on_deadlock);

  void arm();
  [[nodiscard]] bool deadlock_detected() const { return detected_; }
  [[nodiscard]] Time detection_time() const { return detection_time_; }

  /// Optional state dumper (e.g. Network::debug_report): invoked once at
  /// detection, before on_deadlock; the result is kept in report() and
  /// echoed to stderr so a hung test/bench leaves evidence of *what* was
  /// stuck (which hosts hold pool bytes, which sends are un-ACKed).
  void set_diagnostics(DiagnosticsFn diagnostics) {
    diagnostics_ = std::move(diagnostics);
  }
  [[nodiscard]] const std::string& report() const { return report_; }

  /// Overrides where progress is read from. A sharded Network installs a
  /// source summing every executor's counter, so switch-shard byte movement
  /// keeps the (executor-0-resident) watchdog from crying deadlock. The
  /// read is racy against worker threads mid-window — fine for a monotone
  /// stall detector, which only needs to observe *some* recent movement.
  using ProgressFn = std::function<std::int64_t()>;
  void set_progress_source(ProgressFn source) { progress_ = std::move(source); }

 private:
  void check();
  [[nodiscard]] std::int64_t read_progress() const {
    return progress_ ? progress_() : sim_.progress();
  }

  Simulator& sim_;
  ProgressFn progress_;
  Time interval_;
  OutstandingFn outstanding_;
  OnDeadlock on_deadlock_;
  DiagnosticsFn diagnostics_;
  std::string report_;
  std::int64_t last_progress_ = -1;
  bool detected_ = false;
  Time detection_time_ = kTimeNever;
};

}  // namespace wormcast
