// Figure 11: average delay vs offered load for varying multicast
// proportions on a 24-node bidirectional shufflenet.
//
// Paper setup (Section 7.1): (p=2, k=3) bidirectional shufflenet, 24
// switches with one host each; 4 multicast groups of 6 members; link
// propagation delay 1000 byte-times (an optical-backbone setting); mean
// worm 400 bytes; multicast proportion in {0.05, 0.10, 0.15, 0.20};
// offered load (generation rate per host) 0.03 - 0.07.
//
// Expected shape (paper): the tree sits below the Hamiltonian circuit for
// every proportion; delay grows with the multicast proportion (each
// multicast is re-transmitted several times, so the actual throughput
// rises with the proportion); both schemes carry the same total traffic.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

constexpr Time kPropDelay = 1000;  // byte-times per link (Section 7.1)

double run_point(Scheme scheme, double load, double proportion,
                 std::uint64_t seed, Time warmup, Time measure) {
  RandomStream group_rng(1100 + seed);
  auto groups = make_random_groups(4, 6, 24, group_rng);
  ExperimentConfig cfg = bench::sim_defaults(scheme, load, proportion, seed);
  // The 1000 byte-time propagation delay applies to the backbone links;
  // hosts sit next to their switch (default short attachment).
  Network net(make_bidir_shufflenet(2, 3, kPropDelay, kDefaultLinkDelay),
              std::move(groups), cfg);
  net.run(warmup, measure, /*drain_cap=*/200'000);
  return net.summary().mcast_latency_mean;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time warmup = quick ? 30'000 : 80'000;
  const Time measure = quick ? 80'000 : 300'000;

  std::printf("# Figure 11: average multicast delay (byte-times) vs offered "
              "load, 24-node bidirectional shufflenet\n");
  std::printf("# 4 groups x 6 members, propagation delay 1000 byte-times, "
              "mean worm 400 B\n");
  bench::print_header("offered_load",
                      {"prop0.05_tree", "prop0.05_hc", "prop0.10_tree",
                       "prop0.10_hc", "prop0.15_tree", "prop0.15_hc",
                       "prop0.20_tree", "prop0.20_hc"});
  const std::vector<double> loads =
      quick ? std::vector<double>{0.03, 0.05, 0.065}
            : std::vector<double>{0.030, 0.035, 0.040, 0.045, 0.050,
                                  0.055, 0.060, 0.065, 0.070};
  const std::vector<double> props{0.05, 0.10, 0.15, 0.20};
  for (const double load : loads) {
    std::printf("%.3f", load);
    for (const double p : props) {
      const double tree =
          run_point(Scheme::kTreeBroadcast, load, p, 1, warmup, measure);
      const double hc =
          run_point(Scheme::kHamiltonianSF, load, p, 1, warmup, measure);
      std::printf(",%.0f,%.0f", tree, hc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
