# Empty dependencies file for cluster_barrier.
# This may be replaced when dependencies are built.
