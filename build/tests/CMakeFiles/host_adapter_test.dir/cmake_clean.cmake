file(REMOVE_RECURSE
  "CMakeFiles/host_adapter_test.dir/adapter/host_adapter_test.cpp.o"
  "CMakeFiles/host_adapter_test.dir/adapter/host_adapter_test.cpp.o.d"
  "host_adapter_test"
  "host_adapter_test.pdb"
  "host_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
