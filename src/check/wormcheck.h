// wormcheck: causal-path reconstruction and declarative protocol
// expectation checking over a wormtrace snapshot.
//
// The flight recorder (sim/trace.h) captures *what* each layer decided;
// wormcheck validates the causal protocol behaviour *between* those
// decisions, Pip-style: a rule declares "when X happens, Y must follow
// within W unless Z", the checker evaluates every rule against the whole
// snapshot post-run, and violations come back as a deterministic report
// (rule, worm, event window, formatted trace excerpt). The standard rule
// pack (standard_rules) encodes the paper's invariants plus the PR-1/PR-2
// recovery semantics; Network::check_expectations() wires it to a live
// simulation and the sweep benches run it behind --check.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace wormcast::check {

// --- causal-path reconstruction ---------------------------------------------

/// One worm's reconstructed lifetime: every trace event carrying its id,
/// oldest first, threading channel STOP/GO + head/tail/burst, switch
/// grant/hold/fragment/interrupt/flush, adapter tx/rx and host protocol
/// decisions across all hops. Data worms share their message id, so the
/// timeline covers every hop copy and every retransmission; `attempt[i]`
/// says how many retransmissions (anywhere) preceded event i — the
/// (worm id, attempt) key the checker's reports quote.
struct WormPath {
  std::uint64_t worm = 0;
  std::vector<TraceEvent> events;  // oldest first
  std::vector<int> attempt;        // parallel to events
  int retransmissions = 0;         // total kProtoRetransmit events
  /// Reservations (kProtoReserve) not matched by a kProtoRelease at the
  /// same host by the snapshot horizon: the worm still held state when
  /// recording stopped — "in flight at horizon", not "leaked".
  int open_reservations = 0;
  [[nodiscard]] bool unterminated() const { return open_reservations > 0; }
  Time first_t = 0;
  Time last_t = 0;
};

/// Replays a snapshot (oldest first, e.g. Tracer::snapshot()) into
/// per-worm lifetimes, ordered by worm id. Events with worm == 0 (probes,
/// repairs, crashes, flow control) belong to no path.
[[nodiscard]] std::vector<WormPath> reconstruct_paths(
    const std::vector<TraceEvent>& events);

// --- expectations DSL --------------------------------------------------------

/// Does `candidate` satisfy (or excuse) the obligation that `trigger`
/// opened? Matchers see both events so rules can relate the two sites
/// (e.g. "the retransmission happens at the peer my NACK named").
using Matcher =
    std::function<bool(const TraceEvent& trigger, const TraceEvent& candidate)>;
/// Selects which events of the trigger type open obligations at all.
using Filter = std::function<bool(const TraceEvent&)>;

/// One declarative rule, built fluently:
///
///   expect("nack-retransmit")
///       .on(TraceEventType::kProtoNackSent)
///       .within(cfg.ack_timeout + cfg.backoff_cap() + cfg.slack)
///       .followed_by(TraceEventType::kProtoRetransmit, counterparty_worm())
///       .unless(TraceEventType::kProtoSendFailed, counterparty_worm())
///
/// Modes:
///   followed_by / or_by  -- a matching event must appear in
///                           [trigger.t, trigger.t + window]
///   preceded_by          -- a matching event must appear in
///                           [trigger.t - window, trigger.t], earlier in
///                           record order (evidence before accusation)
///   never_within         -- a matching event in the lookback window is
///                           itself the violation (forbidden history);
///                           window defaults to "ever"
///
/// `unless` probes are scanned in [trigger.t - window, trigger.t + window]
/// and waive the obligation entirely (excuses may precede their trigger:
/// a send can fail before the NACK that would have demanded its retry).
///
/// Horizon semantics: an unsatisfied followed_by whose deadline lies past
/// the last recorded timestamp — or a preceded_by whose lookback starts
/// before the first — is *unterminated*, not violated: the snapshot simply
/// does not cover the obligation's window.
class Expectation {
 public:
  explicit Expectation(std::string name) : name_(std::move(name)) {}

  Expectation& on(TraceEventType type, Filter filter = nullptr) {
    trigger_ = type;
    has_trigger_ = true;
    filter_ = std::move(filter);
    return *this;
  }
  Expectation& within(Time window) {
    window_ = window;
    return *this;
  }
  Expectation& followed_by(TraceEventType type, Matcher m) {
    mode_ = Mode::kRequire;
    probes_.push_back(Probe{type, std::move(m)});
    return *this;
  }
  Expectation& or_by(TraceEventType type, Matcher m) {
    probes_.push_back(Probe{type, std::move(m)});
    return *this;
  }
  Expectation& preceded_by(TraceEventType type, Matcher m) {
    mode_ = Mode::kPrecededBy;
    probes_.push_back(Probe{type, std::move(m)});
    return *this;
  }
  Expectation& never_within(TraceEventType type, Matcher m,
                            Time window = kEver) {
    mode_ = Mode::kNeverWithin;
    window_ = window;
    probes_.push_back(Probe{type, std::move(m)});
    return *this;
  }
  Expectation& unless(TraceEventType type, Matcher m) {
    excuses_.push_back(Probe{type, std::move(m)});
    return *this;
  }
  /// Human context appended to every violation of this rule.
  Expectation& detail(std::string text) {
    detail_ = std::move(text);
    return *this;
  }
  /// Config-gates the rule (an inactive rule opens no obligations).
  Expectation& active_if(bool active) {
    active_ = active;
    return *this;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

  static constexpr Time kEver = std::numeric_limits<Time>::max() / 4;

 private:
  friend struct CheckerAccess;
  enum class Mode : std::uint8_t { kRequire, kPrecededBy, kNeverWithin };
  struct Probe {
    TraceEventType type;
    Matcher matcher;
  };
  std::string name_;
  std::string detail_;
  TraceEventType trigger_ = TraceEventType::kChanStop;
  bool has_trigger_ = false;
  Filter filter_;
  Mode mode_ = Mode::kRequire;
  Time window_ = 0;
  std::vector<Probe> probes_;
  std::vector<Probe> excuses_;
  bool active_ = true;
};

/// Entry point of the fluent builder.
[[nodiscard]] inline Expectation expect(std::string rule_name) {
  return Expectation(std::move(rule_name));
}

// --- checking ----------------------------------------------------------------

struct Violation {
  std::string rule;
  std::uint64_t worm = 0;
  TraceEvent trigger;
  Time window_begin = 0;
  Time window_end = 0;
  std::string detail;
  std::vector<TraceEvent> context;  // trace excerpt around the window
};

struct CheckReport {
  /// False: the checker refused to judge (wrapped ring, tracing off);
  /// `refusal` says why. A refused report is never ok().
  bool usable = false;
  std::string refusal;
  std::int64_t events_checked = 0;
  std::int64_t events_dropped = 0;  // ring-wrap loss at snapshot time
  int rules_evaluated = 0;
  std::int64_t obligations = 0;    // triggers that opened an obligation
  std::int64_t unterminated = 0;   // obligations the snapshot cannot judge
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return usable && violations.empty(); }
  /// Deterministic human-readable report (violations in evaluation order,
  /// capped at `max_violations` with an elision note).
  [[nodiscard]] std::string format(std::size_t max_violations = 16) const;
};

/// Evaluates `rules` over a time-ordered snapshot (oldest first). Pure:
/// no simulator needed, so tests feed hand-built event vectors.
[[nodiscard]] CheckReport run_checks(const std::vector<TraceEvent>& events,
                                     const std::vector<Expectation>& rules);

// --- the standard rule pack --------------------------------------------------

/// Protocol constants the standard rules derive their windows from — a
/// mirror of the relevant ProtocolConfig / SwitchMcastConfig fields
/// (wormcheck depends only on sim/, so Network translates its config).
struct CheckConfig {
  Time ack_timeout = 0;
  Time retry_backoff = 4000;
  Time retry_jitter = 2000;
  int max_attempts = 0;
  Time suspicion_timeout = 0;
  Time probe_interval = 0;  // resolved value (never 0 while suspicion is on)
  Time repair_grace = 100'000;
  Time idle_flush_threshold = 0;  // scheme (c); 0 disables the flush rule
  Time join_grace = 0;            // membership churn; 0 disables join-grace
  /// Scheduling/congestion allowance added to every derived window.
  Time slack = 50'000;

  /// Largest NACK/timeout retransmission back-off (protocol_config.h caps
  /// the exponential back-off at 16x the base, plus uniform jitter).
  [[nodiscard]] Time backoff_cap() const {
    return 16 * retry_backoff + retry_jitter;
  }
};

/// The paper's invariants plus PR-1/PR-2 recovery semantics:
///   nack-retransmit    NACKed sends are retried within the back-off cap
///                      unless the attempt budget ran out (or an endpoint
///                      died / was repaired around)
///   timeout-response   an ACK timeout resolves into a retransmission, a
///                      send failure, or a suspicion
///   dedup-delivery     no payload is handed to an application twice
///   suspect-evidence   no accusation without evidence: every suspicion is
///                      preceded by a probe of — or an ACK timeout toward —
///                      the suspect
///   repair-grace       every suspicion completes its structure repair
///                      within repair_grace
///   idle-flush         scheme (c) never flushes a blocked unicast while
///                      the multicast port moved data inside the idle
///                      threshold
///   hold-bound         no worm holds a reserved buffer past the retry
///                      budget's worst case (unbounded configs report
///                      unterminated holds instead)
///   join-grace         every join request is applied or explicitly shed
///                      within join_grace (never silently dropped)
///   leave-no-suspect   a voluntary leave never matures into a suspicion
///                      of the leaver (clean departure != failure)
///   rejoin-fresh-dedup a recognized rejoin resets the group's dedup epoch
[[nodiscard]] std::vector<Expectation> standard_rules(const CheckConfig& cfg);

}  // namespace wormcast::check
