file(REMOVE_RECURSE
  "CMakeFiles/watchdog_test.dir/sim/watchdog_test.cpp.o"
  "CMakeFiles/watchdog_test.dir/sim/watchdog_test.cpp.o.d"
  "watchdog_test"
  "watchdog_test.pdb"
  "watchdog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchdog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
