file(REMOVE_RECURSE
  "CMakeFiles/switch_test.dir/net/switch_test.cpp.o"
  "CMakeFiles/switch_test.dir/net/switch_test.cpp.o.d"
  "switch_test"
  "switch_test.pdb"
  "switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
