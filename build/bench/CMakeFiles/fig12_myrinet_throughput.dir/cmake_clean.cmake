file(REMOVE_RECURSE
  "CMakeFiles/fig12_myrinet_throughput.dir/fig12_myrinet_throughput.cpp.o"
  "CMakeFiles/fig12_myrinet_throughput.dir/fig12_myrinet_throughput.cpp.o.d"
  "fig12_myrinet_throughput"
  "fig12_myrinet_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_myrinet_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
