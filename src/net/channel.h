// One direction of a full-duplex link, at byte granularity.
//
// The transmitter end pulls bytes from a ByteFeed (a switch crossbar
// connection or a host adapter's transmit engine) at one byte per
// byte-time while not STOPped. Bytes arrive at the receiver end after the
// link's propagation delay and are handed to an RxSink (a switch input
// port's slack buffer or a host adapter's receive engine). STOP/GO control
// symbols (Figure 1) travel against the data flow with the same propagation
// delay; they are modeled out of band (Myrinet interleaves them in the byte
// stream; the bandwidth cost is negligible).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "net/worm.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

/// One byte as granted by a ByteFeed.
struct TxByte {
  bool head = false;               // first byte of a worm on this channel
  bool tail = false;               // last byte of the worm on this channel
  WormPtr worm;                    // set on head only
  std::int64_t wire_len = 0;       // set on head only: bytes on this channel
};

/// Supplies bytes to a Channel's transmitter. Implemented by switch
/// crossbar connections and adapter transmit engines.
class ByteFeed {
 public:
  virtual ~ByteFeed() = default;
  /// True if a byte can be sent right now.
  [[nodiscard]] virtual bool byte_available() const = 0;
  /// Takes the next byte. Called only when byte_available().
  virtual TxByte take_byte() = 0;
  /// Called by the channel after the feed's tail byte has been accepted;
  /// the feed is detached before this call (safe to re-attach a new feed).
  virtual void on_tail_sent() = 0;
};

/// Consumes bytes at a Channel's receiver. Implemented by switch input
/// ports and adapter receive engines.
class RxSink {
 public:
  virtual ~RxSink() = default;
  /// First byte of a worm. `wire_len` is the total bytes this channel will
  /// deliver for it (including this one and the trailer).
  virtual void on_head(const WormPtr& worm, std::int64_t wire_len) = 0;
  /// Every subsequent byte; `tail` marks the last one.
  virtual void on_body(bool tail) = 0;
};

/// A directed byte pipe with propagation delay and STOP/GO backpressure.
class Channel {
 public:
  Channel(Simulator& sim, Time delay) : sim_(sim), delay_(delay) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] Time delay() const { return delay_; }

  /// Attaches the transmit-side byte source. The channel pulls from it
  /// until it yields a tail byte, at which point the feed is detached.
  /// Only one feed may be attached at a time.
  void attach_feed(ByteFeed* feed);
  [[nodiscard]] bool feed_attached() const { return feed_ != nullptr; }

  /// Signals that the attached feed may have bytes available again.
  void kick();

  /// Detaches the feed without a tail (a multicast branch releasing a port
  /// on which it has not yet sent anything). Precondition: attached.
  void detach_feed();

  /// Sets the receiver; must be done before any traffic flows.
  void set_sink(RxSink* sink) { sink_ = sink; }

  /// Attaches the experiment's fault injector (null = lossless). Consulted
  /// once per worm head; a worm the injector condemns is truncated (data)
  /// or swallowed whole (control / outage). The feed side is unaffected:
  /// the transmitter still drains its bytes and sees on_tail_sent, exactly
  /// as if a real link had corrupted the worm downstream of it.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Receiver-side flow control: schedule a STOP (GO) to take effect at the
  /// transmitter after the propagation delay.
  void signal_stop();
  void signal_go();
  [[nodiscard]] bool tx_stopped() const { return stopped_; }

  /// Total payload-carrying bytes ever sent (link utilization accounting).
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct InFlight {
    bool head = false;
    bool tail = false;
    WormPtr worm;             // head only
    std::int64_t wire_len = 0;  // head only
  };

  /// Per-worm fault classification, decided at the head byte.
  enum class FaultMode : std::uint8_t {
    kNone,      // deliver every byte
    kTruncate,  // deliver fault_pass_left_ bytes, synthesize a tail, swallow
    kSwallow,   // deliver nothing (control loss / link outage)
  };

  void pump();
  void schedule_pump();
  void deliver_front();
  void classify_fault(const TxByte& b);

  Simulator& sim_;
  Time delay_;
  ByteFeed* feed_ = nullptr;
  RxSink* sink_ = nullptr;
  FaultInjector* faults_ = nullptr;
  bool stopped_ = false;
  bool pump_scheduled_ = false;
  Time last_send_ = -1;
  std::int64_t bytes_sent_ = 0;
  std::deque<InFlight> in_flight_;
  FaultMode fault_mode_ = FaultMode::kNone;
  std::int64_t fault_pass_left_ = 0;  // kTruncate: bytes still delivered
};

}  // namespace wormcast
