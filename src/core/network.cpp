#include "core/network.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "net/mcast_route_builder.h"
#include "sim/random.h"
#include "sim/trace_export.h"

namespace wormcast {

Network::Network(Topology topo, std::vector<MulticastGroupSpec> groups,
                 ExperimentConfig config)
    : topo_(std::move(topo)),
      groups_(std::move(groups)),
      config_(config),
      sim_(config.engine.queue) {
  topo_.validate();
  const ShardPlan plan = build_shard_plan();
  fabric_ = std::make_unique<Fabric>(sim_, topo_, config_.fabric,
                                     engine_ ? &plan : nullptr);
  routing_ = std::make_unique<UpDownRouting>(topo_, config_.routing);
  strategy_ =
      make_tree_strategy(config_.tree, topo_, *routing_, config_.routing);
  strategy_->set_load_probe(
      [this](NodeId n) { return fabric_->node_egress_bytes(n); });
  for (const MulticastGroupSpec& spec : groups_)
    strategy_->plan_group(spec.id, spec.members);
  mcast_engine_ = std::make_unique<SwitchMcastEngine>(
      sim_, topo_, strategy_->primary_routing(), config_.switch_mcast);
  fabric_->install_mcast_engine(mcast_engine_.get());
  tables_ = std::make_unique<GroupTables>(groups_, *routing_,
                                          config_.protocol.max_tree_fanout,
                                          strategy_.get());
  RandomStream master(config_.seed);
  // The injector always exists (unarmed when no faults are configured) so
  // tests can force faults or schedule outages without rebuilding.
  faults_ = std::make_unique<FaultInjector>(master.fork(0xFA017), config_.faults);
  membership_rng_ = master.fork(0x3E17B);
  fabric_->install_fault_injector(faults_.get());
  const int n = topo_.num_hosts();
  adapters_.reserve(static_cast<std::size_t>(n));
  protocols_.reserve(static_cast<std::size_t>(n));
  for (HostId h = 0; h < n; ++h) {
    adapters_.push_back(
        std::make_unique<HostAdapter>(sim_, *fabric_, h, config_.adapter));
    adapters_.back()->set_fault_injector(faults_.get());
    protocols_.push_back(std::make_unique<HostProtocol>(
        sim_, *adapters_.back(), *routing_, *tables_, metrics_,
        config_.protocol, master.fork(0x5000 + static_cast<std::uint64_t>(h)),
        n));
    protocols_.back()->set_worm_pool(&worm_pool_);
    protocols_.back()->set_failure_listener(
        [this](HostId dead) { declare_host_dead(dead); });
  }
  mcast_engine_->set_worm_pool(&worm_pool_);
  traffic_ = std::make_unique<TrafficGenerator>(
      sim_, config_.traffic, groups_, n, master.fork(0x7AFF1C),
      [this](const Demand& d) { inject(d); });
  mcast_engine_->set_flush_handler([this](const WormPtr& worm) {
    protocols_[worm->src]->on_unicast_flushed(worm);
  });
  gate_node_claims_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0);
  metrics_.set_message_closed_hook(
      [this](const std::shared_ptr<MessageContext>& ctx) {
        on_message_closed(ctx->message_id);
      });
  // Host adapters have attached their sinks by now: seed every
  // cross-executor channel's burst budget before the first window runs.
  if (engine_) fabric_->publish_cross_budgets();
}

ShardPlan Network::build_shard_plan() {
  const int shards = config_.engine.shards;
  if (shards < 1)
    throw std::invalid_argument("EngineConfig::shards must be >= 1");
  // One worker per switch band, never more workers than switches. exec0
  // keeps the whole protocol plane, so a hosts-only topology stays classic.
  const int workers = std::min(shards - 1, topo_.num_switches());
  if (workers == 0) return ShardPlan{};
  if (config_.faults.any())
    throw std::invalid_argument(
        "sharded runs (--shards > 1) do not support armed fault injection "
        "yet; run with shards = 1");
  if (config_.tree.kind == TreeStrategyKind::kLoadAware)
    throw std::invalid_argument(
        "the load-aware tree strategy reads per-switch load mid-run and is "
        "not supported with --shards > 1 yet");
  for (const auto& [g, kind] : config_.tree.per_group)
    if (kind == TreeStrategyKind::kLoadAware)
      throw std::invalid_argument(
          "the load-aware tree strategy (per-group override) is not "
          "supported with --shards > 1 yet");

  ShardPlan plan;
  plan.node_exec.assign(static_cast<std::size_t>(topo_.num_nodes()), 0);
  // Switches are banded by NodeId order into contiguous chunks: generators
  // emit switches row-major (torus) or stage-major (Clos/fat tree), so
  // consecutive ids are physically adjacent and most hops stay in-band.
  std::vector<NodeId> switches;
  for (NodeId n = 0; n < topo_.num_nodes(); ++n)
    if (topo_.node(n).kind == NodeKind::kSwitch) switches.push_back(n);
  const std::size_t band =
      (switches.size() + static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);
  for (std::size_t i = 0; i < switches.size(); ++i)
    plan.node_exec[static_cast<std::size_t>(switches[i])] =
        1 + static_cast<int>(i / band);

  // Lookahead = the minimum propagation delay over cross-executor links:
  // an effect emitted at t inside a window lands at t + delay >= window
  // end + 1, so intra-window execution needs no synchronization.
  Time lookahead = kTimeNever;
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    const TopoLink& lk = topo_.link(l);
    if (plan.node_exec[static_cast<std::size_t>(lk.node_a)] !=
        plan.node_exec[static_cast<std::size_t>(lk.node_b)])
      lookahead = std::min(lookahead, lk.delay);
  }
  if (lookahead == kTimeNever) lookahead = 1;  // no cross links at all

  worker_sims_.reserve(static_cast<std::size_t>(workers));
  plan.sims.push_back(&sim_);
  for (int i = 0; i < workers; ++i) {
    worker_sims_.push_back(std::make_unique<Simulator>(config_.engine.queue));
    plan.sims.push_back(worker_sims_.back().get());
  }
  engine_ = std::make_unique<ShardedEngine>(plan.sims, lookahead);
  plan.bus = &engine_->bus();
  return plan;
}

void Network::require_unsharded(const char* what) const {
  if (engine_ != nullptr)
    throw std::logic_error(std::string(what) +
                           " is not supported with --shards > 1 yet; run "
                           "with shards = 1");
}

Network::~Network() = default;

void Network::inject(const Demand& demand) {
  protocols_[demand.src]->originate(demand);
}

std::shared_ptr<MessageContext> Network::send_switch_multicast(
    HostId src, GroupId group, std::int64_t payload) {
  require_unsharded("send_switch_multicast");
  const CircuitTable& members = tables_->circuit(group);
  const int dests = members.size() - (members.contains(src) ? 1 : 0);
  auto ctx = metrics_.create_message(src, group, payload, dests, sim_.now());
  if (dests == 0) return ctx;
  gate_admit(GatedSend{src, group, payload, /*broadcast=*/false, ctx});
  return ctx;
}

std::shared_ptr<MessageContext> Network::send_switch_broadcast(
    HostId src, std::int64_t payload) {
  require_unsharded("send_switch_broadcast");
  auto ctx = metrics_.create_message(src, kBroadcastGroup, payload,
                                     topo_.num_hosts() - 1, sim_.now());
  gate_admit(GatedSend{src, kNoGroup, payload, /*broadcast=*/true, ctx});
  return ctx;
}

// --- multicast admission gate -----------------------------------------------

namespace {
void collect_tree_nodes(const Topology& topo, NodeId at,
                        const McastRouteTree& tree, std::vector<NodeId>* out) {
  const NodeId next = topo.neighbor_via(at, tree.port);
  out->push_back(next);
  for (const McastRouteTree& child : tree.children)
    collect_tree_nodes(topo, next, child, out);
}
}  // namespace

std::vector<NodeId> Network::gate_footprint(const GatedSend& send) const {
  std::vector<NodeId> nodes;
  if (send.broadcast) {
    // The flood covers the whole spanning tree: claim everything.
    nodes.resize(static_cast<std::size_t>(topo_.num_nodes()));
    for (NodeId n = 0; n < topo_.num_nodes(); ++n)
      nodes[static_cast<std::size_t>(n)] = n;
    return nodes;
  }
  nodes.push_back(send.src);
  const NodeId src_sw = topo_.switch_of_host(send.src);
  nodes.push_back(src_sw);
  const CircuitTable& members = tables_->circuit(send.group);
  const McastPlan plan =
      strategy_->plan_multicast(send.group, send.src, members.order());
  for (const McastPartition& part : plan.partitions)
    for (const McastRouteTree& branch : part.branches)
      collect_tree_nodes(topo_, src_sw, branch, &nodes);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

bool Network::gate_admissible(const std::vector<NodeId>& nodes) const {
  for (const NodeId n : nodes)
    if (gate_node_claims_[static_cast<std::size_t>(n)] > 0) return false;
  return true;
}

void Network::gate_admit(GatedSend send) {
  // A degenerate message with no live context (e.g. a broadcast on a
  // one-host fabric) can never signal close: inject it untracked.
  if (!metrics_.is_outstanding(send.ctx->message_id)) {
    gate_inject(send);
    return;
  }
  if (gate_queue_.empty()) {
    std::vector<NodeId> nodes = gate_footprint(send);
    if (gate_admissible(nodes)) {
      gate_dispatch(std::move(send), std::move(nodes));
      return;
    }
  }
  // Strict FIFO: once anything queues, later sends queue behind it even if
  // they would be admissible — bypassing would starve the blocked head.
  gate_queue_.push_back(std::move(send));
}

void Network::gate_dispatch(GatedSend send, std::vector<NodeId> nodes) {
  for (const NodeId n : nodes) ++gate_node_claims_[static_cast<std::size_t>(n)];
  gated_nodes_.emplace(send.ctx->message_id, std::move(nodes));
  gate_inject(send);
}

void Network::gate_inject(const GatedSend& send) {
  if (send.broadcast) {
    auto worm = worm_pool_.make();
    worm->id = send.ctx->message_id;
    worm->kind = WormKind::kSwitchMcast;
    worm->src = send.src;
    worm->payload = send.payload;
    worm->header = 0;
    worm->broadcast_flood = true;
    worm->route = strategy_->primary_routing().route_to_root(send.src);
    worm->message = send.ctx;
    worm->created_at = send.ctx->created_at;
    adapters_[send.src]->send(std::move(worm));
    return;
  }
  // One worm per plan partition (the single-root strategy always plans
  // exactly one). Partitions are host-disjoint, so the shared message
  // context counts each destination exactly once.
  const CircuitTable& members = tables_->circuit(send.group);
  const McastPlan plan =
      strategy_->plan_multicast(send.group, send.src, members.order());
  for (const McastPartition& part : plan.partitions) {
    auto worm = worm_pool_.make();
    worm->id = send.ctx->message_id;
    worm->kind = WormKind::kSwitchMcast;
    worm->src = send.src;
    worm->payload = send.payload;
    worm->header = 0;  // metadata rides in the shared message context
    worm->mcast_route = EncodedMcastRoute::encode(part.branches);
    worm->message = send.ctx;
    worm->created_at = send.ctx->created_at;
    adapters_[send.src]->send(std::move(worm));
  }
}

void Network::on_message_closed(std::uint64_t message_id) {
  const auto it = gated_nodes_.find(message_id);
  if (it == gated_nodes_.end()) return;
  for (const NodeId n : it->second)
    --gate_node_claims_[static_cast<std::size_t>(n)];
  gated_nodes_.erase(it);
  gate_pump();
}

void Network::gate_pump() {
  while (!gate_queue_.empty()) {
    GatedSend& front = gate_queue_.front();
    // A queued message can close while waiting (abandoned at repair time):
    // drop it instead of injecting worms for a dead context.
    if (!metrics_.is_outstanding(front.ctx->message_id)) {
      gate_queue_.pop_front();
      continue;
    }
    // Footprint recomputed per attempt: plans may have changed while the
    // send waited (membership churn, load re-plans, root migration).
    std::vector<NodeId> nodes = gate_footprint(front);
    if (!gate_admissible(nodes)) return;  // strict FIFO: head blocks the rest
    GatedSend send = std::move(front);
    gate_queue_.pop_front();
    gate_dispatch(std::move(send), std::move(nodes));
  }
}

void Network::crash_host(HostId h, Time when) {
  require_unsharded("crash_host");
  sim_.at(when, [this, h] {
    faults_->mark_host_dead(h);
    protocols_[h]->on_crash();
  });
}

void Network::fail_link(LinkId l, Time when) {
  require_unsharded("fail_link");
  sim_.at(when, [this, l] {
    const TopoLink& link = topo_.link(l);
    faults_->kill_link(&fabric_->channel_from(l, link.node_a));
    faults_->kill_link(&fabric_->channel_from(l, link.node_b));
    // Recompute up/down labels around the dead link; this also clears the
    // route caches, so every retransmission travels the healed paths. The
    // strategy recomputes its owned routings and drops cached plans.
    routing_->fail_link(l);
    strategy_->fail_link(l);
    metrics_.on_link_failed();
  });
}

void Network::migrate_root(NodeId new_root, Time when) {
  sim_.at(when, [this, new_root] {
    routing_->set_root(new_root);
    strategy_->on_root_migrated(new_root);
  });
}

int Network::flap_link(LinkId l, Time from, Time until, Time mean_down,
                       Time mean_up) {
  require_unsharded("flap_link");
  const TopoLink& link = topo_.link(l);
  // One key per link: both directed channels share the schedule (the link
  // flaps as a unit) and the windows never depend on call order.
  const std::uint64_t key = 0xF1A90000ull + static_cast<std::uint64_t>(l);
  const int windows =
      faults_->schedule_flaps(&fabric_->channel_from(l, link.node_a), from,
                              until, mean_down, mean_up, key);
  faults_->schedule_flaps(&fabric_->channel_from(l, link.node_b), from, until,
                          mean_down, mean_up, key);
  // Deliberately NOT routing_->fail_link(): the link recovers, so cached
  // routes stay valid — invalidating them here would bake every transient
  // outage into the topology forever (the fail_link permanence assumption
  // flap cycles exist to avoid). Retransmissions bridge each down-window.
  return windows;
}

// --- membership churn -------------------------------------------------------

namespace {
std::uint64_t member_key(GroupId g, HostId h) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g)) << 32) |
         static_cast<std::uint32_t>(h);
}
}  // namespace

void Network::request_join(GroupId g, HostId h, Time when) {
  sim_.at(when, [this, g, h] { enqueue_join(g, h, sim_.now(), 0); });
}

void Network::request_leave(GroupId g, HostId h, Time when) {
  sim_.at(when, [this, g, h] {
    // Leaves are never shed: a departure must not be deniable.
    membership_q_.push_back(MembershipOp{false, g, h, sim_.now(), 0});
    membership_queue_peak_ =
        std::max(membership_queue_peak_,
                 static_cast<std::int64_t>(membership_q_.size()));
    pump_membership();
  });
}

void Network::enqueue_join(GroupId g, HostId h, Time requested_at,
                           int attempts) {
  if (attempts == 0) metrics_.on_join_requested();
  // Every attempt (retries included) re-arms the join-grace obligation:
  // each request must be applied or shed within the window.
  WORMTRACE(sim_, kProtoJoinRequest, h, -1, 0, g);
  const MembershipConfig& m = config_.membership;
  if (m.queue_limit > 0 &&
      static_cast<int>(membership_q_.size()) >= m.queue_limit) {
    const bool final_shed = attempts + 1 >= m.max_join_attempts;
    metrics_.on_join_shed(final_shed);
    WORMTRACE(sim_, kProtoJoinShed, h, -1, 0, g);
    if (!final_shed) {
      // Capped exponential back-off plus jitter, the NACK-retry discipline:
      // shed joiners return slowly and never in lockstep.
      Time delay = m.retry_backoff
                   << std::min(attempts, 4);  // cap at 16x the base
      if (m.retry_jitter > 0)
        delay += membership_rng_.keyed_uniform(
            0, m.retry_jitter, 0x3E17Bull, member_key(g, h),
            static_cast<std::uint64_t>(attempts));
      sim_.after(delay, [this, g, h, requested_at, attempts] {
        enqueue_join(g, h, requested_at, attempts + 1);
      });
    }
    return;
  }
  membership_q_.push_back(MembershipOp{true, g, h, requested_at, attempts});
  membership_queue_peak_ = std::max(
      membership_queue_peak_, static_cast<std::int64_t>(membership_q_.size()));
  pump_membership();
}

void Network::pump_membership() {
  if (membership_pump_armed_ || membership_q_.empty()) return;
  membership_pump_armed_ = true;
  // One operation per op_cost byte-times: the coordinator's control-plane
  // bandwidth, and the backpressure that makes the queue bound meaningful.
  sim_.after(config_.membership.op_cost, [this] {
    membership_pump_armed_ = false;
    if (membership_q_.empty()) return;
    const MembershipOp op = membership_q_.front();
    membership_q_.pop_front();
    if (op.join) {
      apply_join(op);
    } else {
      apply_leave(op);
    }
    pump_membership();
  });
}

void Network::apply_join(const MembershipOp& op) {
  const std::uint64_t key = member_key(op.group, op.host);
  if (faults_->host_dead(op.host) || removed_hosts_.count(op.host) > 0) {
    // The host crashed while its join was queued: resolve the obligation
    // explicitly as a final shed rather than leaving it dangling.
    metrics_.on_join_shed(true);
    WORMTRACE(sim_, kProtoJoinShed, op.host, -1, 0, op.group);
    return;
  }
  const GroupTables::JoinResult jr = tables_->add_member(op.group, op.host);
  const bool rejoin = jr.joined && former_members_.erase(key) > 0;
  metrics_.on_join_applied(sim_.now() - op.requested_at, rejoin);
  WORMTRACE(sim_, kProtoJoinApplied, op.host, -1, 0, op.group);
  if (!jr.joined) return;  // already a member: applied idempotently
  if (rejoin) WORMTRACE(sim_, kProtoRejoin, op.host, -1, 0, op.group);
  joined_at_[key] = sim_.now();
  // Re-plan the group's strategy trees for the new membership (multi-root
  // re-picks the root, cached multicast plans drop).
  strategy_->plan_group(op.group, tables_->circuit(op.group).order());
  // The joiner first (it sets its view floor and, on rejoin, resets the
  // group's dedup epoch), then every peer patches in-flight hop budgets.
  protocols_[op.host]->on_self_joined(op.group, rejoin);
  for (const auto& protocol : protocols_)
    protocol->on_member_joined(op.group, op.host);
  if (!scheme_uses_circuit(config_.protocol.scheme)) return;
  // Settle sweep (circuit schemes only): a worm already inside a channel
  // or adapter queue carries a hop budget sized for the pre-join circuit,
  // so the members past the splice point can miss that copy — the one
  // race no table patch can reach. Give such pre-join messages join_grace
  // to finish honestly, then write the stragglers off as disrupted so the
  // run drains (the exact repair_grace discipline, for joins).
  const Time joined_at = sim_.now();
  const GroupId g = op.group;
  sim_.after(config_.membership.join_grace, [this, joined_at, g] {
    for (const std::shared_ptr<MessageContext>& ctx :
         metrics_.outstanding_messages())
      if (ctx->group == g && ctx->created_at <= joined_at)
        metrics_.abandon_message(ctx);
  });
}

void Network::apply_leave(const MembershipOp& op) {
  if (faults_->host_dead(op.host) || removed_hosts_.count(op.host) > 0)
    return;  // the crash (and its full repair) superseded the leave
  if (!tables_->is_member(op.group, op.host)) return;  // duplicate or stale
  if (tables_->group_size(op.group) <= 1) return;  // sole member: keep group
  const std::uint64_t key = member_key(op.group, op.host);

  // Accounting triage before the tables forget the member, mirroring
  // declare_host_dead but scoped: the leaver stays alive, so messages it
  // *originated* keep completing normally — only its destination role in
  // this group ends. Messages created before the leaver even joined never
  // counted it as a destination, so they must not shrink either.
  const auto joined_it = joined_at_.find(key);
  const Time member_since = joined_it == joined_at_.end() ? 0 : joined_it->second;
  for (const std::shared_ptr<MessageContext>& ctx :
       metrics_.outstanding_messages()) {
    if (ctx->group != op.group || ctx->origin == op.host) continue;
    if (ctx->created_at < member_since) continue;  // pre-join: not a dest
    const std::vector<std::uint64_t>* order =
        metrics_.order_of(op.host, ctx->group);
    const bool already_delivered =
        order != nullptr && std::find(order->begin(), order->end(),
                                      ctx->message_id) != order->end();
    if (!already_delivered) metrics_.shrink_destinations(ctx, sim_.now());
  }

  const GroupTables::RepairStats stats =
      tables_->remove_member_from(op.group, op.host);
  repair_stats_.circuits_spliced += stats.circuits_spliced;
  repair_stats_.subtrees_reparented += stats.subtrees_reparented;
  repair_stats_.roots_promoted += stats.roots_promoted;
  former_members_.insert(key);
  joined_at_.erase(key);
  strategy_->plan_group(op.group, tables_->circuit(op.group).order());
  metrics_.on_leave_applied();
  WORMTRACE(sim_, kProtoLeave, op.host, -1, 0, op.group);
  // The leaver finishes what it holds (forward-only, no new deliveries);
  // every peer retargets in-flight sends around it. No suspicion, no
  // repair-grace burn: this is a clean departure, not a failure.
  protocols_[op.host]->on_self_left(op.group);
  for (const auto& protocol : protocols_)
    protocol->on_member_left(op.host, op.group, stats.reattachments);
}

void Network::declare_host_dead(HostId dead) {
  if (!removed_hosts_.insert(dead).second) return;  // already repaired
  faults_->mark_host_dead(dead);
  protocols_[dead]->on_crash();  // no-op when already crashed

  // Message-accounting triage *before* the tables forget the member: a
  // message is abandoned when its origin (or unicast destination) died;
  // a multicast merely loses one destination when a member that had not
  // yet delivered it died.
  for (const std::shared_ptr<MessageContext>& ctx :
       metrics_.outstanding_messages()) {
    if (ctx->origin == dead ||
        (ctx->group == kNoGroup && ctx->unicast_dst == dead)) {
      metrics_.abandon_message(ctx);
      continue;
    }
    if (ctx->group == kNoGroup) continue;
    const bool dead_is_dest = ctx->group == kBroadcastGroup ||
                              tables_->circuit(ctx->group).contains(dead);
    if (!dead_is_dest) continue;
    const std::vector<std::uint64_t>* order =
        metrics_.order_of(dead, ctx->group);
    const bool already_delivered =
        order != nullptr && std::find(order->begin(), order->end(),
                                      ctx->message_id) != order->end();
    if (!already_delivered) metrics_.shrink_destinations(ctx, sim_.now());
  }

  // Heal the shared group structures in place: splice the circuits,
  // re-parent orphaned subtrees, promote a new root where needed. Every
  // protocol sees the repaired tables immediately (shared by reference).
  // Affected groups are captured *before* the splice — afterwards the
  // tables no longer know where the dead member was.
  const std::vector<GroupId> affected = tables_->groups_containing(dead);
  const GroupTables::RepairStats stats = tables_->remove_member(dead);
  for (const GroupId g : affected)
    strategy_->plan_group(g, tables_->circuit(g).order());
  repair_stats_.circuits_spliced += stats.circuits_spliced;
  repair_stats_.subtrees_reparented += stats.subtrees_reparented;
  repair_stats_.roots_promoted += stats.roots_promoted;

  // Let every survivor retarget its in-flight sends onto the repaired
  // structures (the PR-1 retry machinery then redelivers them).
  for (const auto& protocol : protocols_)
    protocol->on_peer_removed(dead, stats.reattachments);
  metrics_.on_repair(sim_.now());

  // Grace sweep: copies that died *inside* the crashed member (ACKed but
  // never forwarded) leave their message outstanding forever. Give the
  // repaired structures a grace period to finish honest stragglers, then
  // write the rest off as disrupted so quiescence drains.
  const Time repaired_at = sim_.now();
  sim_.after(config_.protocol.repair_grace, [this, repaired_at] {
    for (const std::shared_ptr<MessageContext>& ctx :
         metrics_.outstanding_messages())
      if (ctx->created_at <= repaired_at) metrics_.abandon_message(ctx);
  });
}

void Network::run(Time warmup, Time measure, Time drain_cap) {
  metrics_.set_window_start(warmup);
  measure_span_ = measure;
  traffic_->start(warmup + measure);
  // Window edges are read between run_until() calls, after every event of
  // the edge tick has fired: mid-tick reads would depend on how events
  // interleave within the tick, which the burst fast path changes. A
  // sharded run_until leaves every executor parked at the deadline, so
  // these reads see the same settled state as the classic path.
  run_until(warmup);
  egress_at_window_start_ = fabric_->host_egress_bytes();
  run_until(warmup + measure);
  egress_at_window_end_ = fabric_->host_egress_bytes();
  // Drain: let in-flight messages finish so tail latencies are recorded,
  // bounded so saturated runs terminate.
  const Time drain_deadline = warmup + measure + drain_cap;
  while (metrics_.outstanding() > 0 && sim_.now() < drain_deadline &&
         !(engine_ ? engine_->idle() : sim_.idle())) {
    run_until(std::min(drain_deadline, sim_.now() + 10'000));
  }
}

Network::Summary Network::summary() const {
  Summary s;
  s.offered_load = config_.traffic.offered_load;
  if (measure_span_ > 0) {
    s.measured_utilization =
        static_cast<double>(egress_at_window_end_ - egress_at_window_start_) /
        static_cast<double>(measure_span_) /
        static_cast<double>(topo_.num_hosts());
  }
  s.mcast_latency_mean = metrics_.mcast_latency().mean();
  s.mcast_latency_p95 = metrics_.mcast_latency().percentile(95.0);
  s.mcast_completion_mean = metrics_.mcast_completion().mean();
  s.unicast_latency_mean = metrics_.unicast_latency().mean();
  s.mcast_samples = metrics_.mcast_latency().count();
  s.mcast_completion_samples = metrics_.mcast_completion().count();
  s.unicast_samples = metrics_.unicast_latency().count();
  const double span = measure_span_ > 0 ? static_cast<double>(measure_span_) : 1.0;
  s.throughput_per_host = static_cast<double>(metrics_.payload_delivered()) /
                          span / static_cast<double>(topo_.num_hosts());
  s.messages = metrics_.messages_created();
  s.drops = metrics_.mcast_drops();
  s.nacks = metrics_.nacks();
  s.retransmits = metrics_.retransmits();
  s.outstanding = metrics_.outstanding();
  s.oldest_outstanding_age = metrics_.oldest_outstanding_age(sim_.now());
  s.fabric_overflows = fabric_->total_overflows();
  s.faults_injected = faults_->total_injected();
  s.bytes_swallowed = fabric_->total_bytes_swallowed();
  s.ack_timeouts = metrics_.ack_timeouts();
  s.duplicates_suppressed = metrics_.duplicates_suppressed();
  s.deliveries_failed = metrics_.deliveries_failed();
  s.messages_completed = metrics_.messages_completed();
  s.suspicions = metrics_.suspicions();
  s.hosts_crashed = faults_->hosts_crashed();
  s.hosts_removed = static_cast<std::int64_t>(removed_hosts_.size());
  s.links_failed = metrics_.links_failed();
  s.sends_rerouted = metrics_.sends_rerouted();
  s.messages_disrupted = metrics_.messages_disrupted();
  s.unicasts_flushed = mcast_engine_->unicasts_flushed();
  s.last_repair_time = metrics_.last_repair_time();
  s.joins_requested = metrics_.joins_requested();
  s.joins_applied = metrics_.joins_applied();
  s.joins_shed = metrics_.joins_shed();
  s.joins_abandoned = metrics_.joins_abandoned();
  s.rejoins = metrics_.rejoins();
  s.leaves = metrics_.leaves();
  s.join_latency_mean = metrics_.join_latency().mean();
  s.join_latency_p95 = metrics_.join_latency().percentile(95.0);
  s.join_samples = metrics_.join_latency().count();
  s.membership_queue_peak = membership_queue_peak_;
  s.flap_windows = faults_->flap_windows();
  return s;
}

void Network::enable_tracing(std::size_t capacity) {
  sim_.tracer().enable(capacity);
  for (const auto& s : worker_sims_) s->tracer().enable(capacity);
}

std::vector<TraceEvent> Network::merged_trace_snapshot() const {
  std::vector<TraceEvent> events = sim_.tracer().snapshot();
  if (worker_sims_.empty()) return events;
  for (const auto& s : worker_sims_) {
    const std::vector<TraceEvent> part = s->tracer().snapshot();
    events.insert(events.end(), part.begin(), part.end());
  }
  // Canonical stream: time-ordered, each executor's recording order
  // preserved within a tick (every per-component track lives on exactly
  // one executor, so track-local causality survives the merge).
  std::stable_sort(
      events.begin(), events.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.t < b.t; });
  return events;
}

std::int64_t Network::trace_recorded() const {
  std::int64_t total = sim_.tracer().recorded();
  for (const auto& s : worker_sims_) total += s->tracer().recorded();
  return total;
}

std::int64_t Network::trace_dropped() const {
  std::int64_t total = sim_.tracer().dropped();
  for (const auto& s : worker_sims_) total += s->tracer().dropped();
  return total;
}

bool Network::write_trace(const std::string& path) const {
  if (worker_sims_.empty()) return write_chrome_trace(sim_.tracer(), path);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "write_trace: cannot open " << path << '\n';
    return false;
  }
  out << chrome_trace_json(merged_trace_snapshot());
  return static_cast<bool>(out);
}

check::CheckReport Network::check_expectations() const {
  check::CheckReport rep;
  if (!sim_.tracer().enabled() && trace_recorded() == 0) {
    rep.refusal =
        "tracing is not enabled; call enable_tracing() before the run "
        "(with --check the benches do this automatically)";
    return rep;
  }
  if (trace_dropped() > 0) {
    std::ostringstream why;
    why << "the trace ring wrapped: " << trace_dropped() << " of "
        << trace_recorded() << " events were overwritten (capacity "
        << sim_.tracer().capacity() << " per executor)"
        << ", so absence of a violation proves nothing; raise the trace "
           "capacity (--trace-cap) until nothing drops";
    rep.refusal = why.str();
    rep.events_dropped = trace_dropped();
    return rep;
  }

  check::CheckConfig ccfg;
  const ProtocolConfig& p = config_.protocol;
  ccfg.ack_timeout = p.ack_timeout;
  ccfg.retry_backoff = p.retry_backoff;
  ccfg.retry_jitter = p.retry_jitter;
  ccfg.max_attempts = p.max_attempts;
  ccfg.suspicion_timeout = p.suspicion_timeout;
  ccfg.probe_interval = p.probe_interval > 0
                            ? p.probe_interval
                            : std::max<Time>(1, p.suspicion_timeout / 4);
  ccfg.repair_grace = p.repair_grace;
  ccfg.join_grace = config_.membership.join_grace;
  // The idle-flush rule only applies when scheme (c) can actually flush.
  ccfg.idle_flush_threshold =
      config_.switch_mcast.scheme == SwitchMcastScheme::kFlushUnicast
          ? config_.switch_mcast.idle_flush_threshold
          : 0;
  rep = check::run_checks(merged_trace_snapshot(), check::standard_rules(ccfg));
  rep.events_dropped = trace_dropped();
  return rep;
}

void Network::register_counters(CounterRegistry& reg) const {
  const auto i64 = [](auto getter) {
    return [getter] { return static_cast<double>(getter()); };
  };
  reg.add("messages_created", i64([this] { return metrics_.messages_created(); }));
  reg.add("messages_completed",
          i64([this] { return metrics_.messages_completed(); }));
  reg.add("payload_delivered",
          i64([this] { return metrics_.payload_delivered(); }));
  reg.add("outstanding", i64([this] { return metrics_.outstanding(); }));
  reg.add("nacks", i64([this] { return metrics_.nacks(); }));
  reg.add("retransmits", i64([this] { return metrics_.retransmits(); }));
  reg.add("relays", i64([this] { return metrics_.relays(); }));
  reg.add("ack_timeouts", i64([this] { return metrics_.ack_timeouts(); }));
  reg.add("duplicates_suppressed",
          i64([this] { return metrics_.duplicates_suppressed(); }));
  reg.add("deliveries_failed",
          i64([this] { return metrics_.deliveries_failed(); }));
  reg.add("mcast_drops", i64([this] { return metrics_.mcast_drops(); }));
  reg.add("suspicions", i64([this] { return metrics_.suspicions(); }));
  reg.add("repairs", i64([this] { return metrics_.repairs(); }));
  reg.add("sends_rerouted", i64([this] { return metrics_.sends_rerouted(); }));
  reg.add("messages_disrupted",
          i64([this] { return metrics_.messages_disrupted(); }));
  reg.add("links_failed", i64([this] { return metrics_.links_failed(); }));
  reg.add("churn_joins_requested",
          i64([this] { return metrics_.joins_requested(); }));
  reg.add("churn_joins_applied", i64([this] { return metrics_.joins_applied(); }));
  reg.add("churn_rejoins", i64([this] { return metrics_.rejoins(); }));
  reg.add("churn_leaves", i64([this] { return metrics_.leaves(); }));
  reg.add("shed_joins", i64([this] { return metrics_.joins_shed(); }));
  reg.add("shed_joins_final", i64([this] { return metrics_.joins_abandoned(); }));
  reg.add("membership_queue_peak",
          i64([this] { return membership_queue_peak_; }));
  reg.add("flap_windows", i64([this] { return faults_->flap_windows(); }));
  reg.add("fabric_bytes_sent",
          i64([this] { return fabric_->fabric_bytes_sent(); }));
  reg.add("fabric_bytes_swallowed",
          i64([this] { return fabric_->total_bytes_swallowed(); }));
  reg.add("fabric_overflows", i64([this] { return fabric_->total_overflows(); }));
  reg.add("faults_injected", i64([this] { return faults_->total_injected(); }));
  reg.add("tree_worms_planned",
          i64([this] { return strategy_->worms_planned(); }));
  reg.add("tree_partitions_merged",
          i64([this] { return strategy_->partitions_merged(); }));
  reg.add("tree_replans", i64([this] { return strategy_->replans(); }));
  reg.add("mcast_connections",
          i64([this] { return mcast_engine_->connections_opened(); }));
  reg.add("mcast_fragments",
          i64([this] { return mcast_engine_->fragments_sent(); }));
  reg.add("unicasts_flushed",
          i64([this] { return mcast_engine_->unicasts_flushed(); }));
  reg.add("events_dispatched", i64([this] { return events_dispatched(); }));
  reg.add("event_queue_peak", i64([this] { return event_queue_peak(); }));
  reg.add("trace_events_recorded", i64([this] { return trace_recorded(); }));
  reg.add("trace_events_dropped", i64([this] { return trace_dropped(); }));
  // Memory audit: capacity-based resident-byte estimates per subsystem,
  // so BENCH json shows where a large fabric's memory goes. Deterministic
  // for a given run (capacities follow the event sequence, not the
  // allocator), but per-executor structures (queues, trace rings, arena)
  // legitimately scale with the shard count — the shard gate exempts
  // mem_* wholesale. The protocol entry counts object shells only; the
  // fabric/adapters/tables entries include their queues and tables.
  reg.add("mem_fabric_bytes",
          i64([this] { return fabric_->heap_bytes_estimate(); }));
  reg.add("mem_adapters_bytes", i64([this] {
    std::size_t bytes = 0;
    for (const auto& a : adapters_) bytes += a->heap_bytes_estimate();
    return bytes;
  }));
  reg.add("mem_protocols_bytes", i64([this] {
    return protocols_.size() * sizeof(HostProtocol);
  }));
  reg.add("mem_tables_bytes",
          i64([this] { return tables_->heap_bytes_estimate(); }));
  reg.add("mem_queues_bytes", i64([this] {
    std::size_t bytes = sim_.event_queue_heap_bytes();
    for (const auto& w : worker_sims_) bytes += w->event_queue_heap_bytes();
    return bytes;
  }));
  reg.add("mem_trace_bytes", i64([this] {
    std::size_t bytes = sim_.tracer().capacity() * sizeof(TraceEvent);
    for (const auto& w : worker_sims_)
      bytes += w->tracer().capacity() * sizeof(TraceEvent);
    return bytes;
  }));
  reg.add("mem_arena_bytes", i64([this] {
    return worm_pool_.parked() * sizeof(Worm);
  }));
}

DeadlockWatchdog& Network::attach_watchdog(Time interval) {
  watchdog_ = std::make_unique<DeadlockWatchdog>(
      sim_, interval, [this] { return metrics_.outstanding(); }, nullptr);
  watchdog_->set_diagnostics([this] { return debug_report(); });
  // Sharded runs: bytes can be moving on worker executors while exec0's
  // own progress counter sits still, so the stall detector must watch the
  // engine-wide sum (reads are racy-but-monotone; fine for a watchdog).
  if (engine_)
    watchdog_->set_progress_source([this] { return engine_->progress(); });
  watchdog_->arm();
  return *watchdog_;
}

std::string Network::debug_report() const {
  std::ostringstream out;
  out << "t=" << sim_.now() << " outstanding=" << metrics_.outstanding()
      << " faults=" << faults_->total_injected() << '\n';
  for (HostId h = 0; h < topo_.num_hosts(); ++h) {
    const HostProtocol::DebugSnapshot snap = protocols_[h]->debug_snapshot();
    out << "host " << h << ':' << (protocols_[h]->crashed() ? " dead" : "")
        << " tasks=" << snap.tasks.size()
        << " pool_used=" << snap.pool_used
        << " ack_wait=" << snap.ack_wait_keys.size()
        << " txq=" << adapters_[h]->tx_queue_depth() << '\n';
    for (const HostProtocol::TaskDebug& t : snap.tasks) {
      out << "  msg=" << t.message_id << " origin=" << t.origin
          << " group=" << t.group << " reserved=" << t.reserved
          << (t.rx_complete ? " rx-done" : " rx-partial")
          << (t.delivered ? " delivered" : "")
          << (t.originator ? " originator" : "") << " sends=[";
      for (std::size_t i = 0; i < t.sends.size(); ++i) {
        const HostProtocol::SendDebug& sd = t.sends[i];
        if (i > 0) out << ' ';
        out << sd.to << ':'
            << (sd.failed ? "failed"
                          : (sd.acked ? "acked"
                                      : (sd.started ? "unacked" : "queued")));
        if (sd.attempts > 0) out << "(a" << sd.attempts << ')';
      }
      out << "]\n";
    }
  }
  return out.str();
}

}  // namespace wormcast
