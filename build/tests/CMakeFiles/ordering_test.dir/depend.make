# Empty dependencies file for ordering_test.
# This may be replaced when dependencies are built.
