# Empty dependencies file for wormcast_core.
# This may be replaced when dependencies are built.
