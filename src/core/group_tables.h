// Per-group multicast structures (Sections 5 and 6).
//
// Hamiltonian circuit: members ordered by increasing host ID; the multicast
// propagates low-to-high with a single wrap-around (the one ID-order
// reversal the two-buffer-class rule allows).
//
// Rooted tree: the root is the lowest-ID member and every child has a
// higher ID than its parent. We build the cheapest such tree greedily:
// members are inserted in increasing ID order and each attaches to the
// already-inserted member with the smallest unicast hop count (ties to the
// lowest ID; fanout capped), so the parent always carries a lower ID.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/updown.h"
#include "sim/types.h"
#include "traffic/groups.h"

namespace wormcast {

/// Hamiltonian circuit over one group's members.
class CircuitTable {
 public:
  CircuitTable() = default;
  explicit CircuitTable(std::vector<HostId> members);  // any order; sorted

  [[nodiscard]] const std::vector<HostId>& order() const { return order_; }
  [[nodiscard]] int size() const { return static_cast<int>(order_.size()); }
  [[nodiscard]] HostId lowest() const { return order_.front(); }
  [[nodiscard]] HostId highest() const { return order_.back(); }
  [[nodiscard]] bool contains(HostId h) const;
  /// Successor on the circuit (wraps highest -> lowest).
  [[nodiscard]] HostId next(HostId h) const;
  /// Total unicast hop count around the circuit (Figure 8's cost metric).
  [[nodiscard]] int circuit_hop_length(const UpDownRouting& routing) const;

 private:
  std::vector<HostId> order_;  // ascending IDs
};

/// Rooted multicast tree over one group's members (Figure 9).
class TreeTable {
 public:
  TreeTable() = default;
  /// Builds the ID-ordered greedy tree. `max_fanout` caps children per
  /// node (0 = unlimited).
  TreeTable(std::vector<HostId> members, const UpDownRouting& routing,
            int max_fanout = 0);

  [[nodiscard]] HostId root() const { return root_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] const std::vector<HostId>& members() const { return members_; }
  [[nodiscard]] bool contains(HostId h) const;
  /// kNoHost for the root.
  [[nodiscard]] HostId parent(HostId h) const;
  /// Ascending-ID children list.
  [[nodiscard]] const std::vector<HostId>& children(HostId h) const;
  /// Depth of the tree (root = 0).
  [[nodiscard]] int depth() const;

 private:
  HostId root_ = kNoHost;
  std::vector<HostId> members_;  // ascending
  std::unordered_map<HostId, HostId> parent_;
  std::unordered_map<HostId, std::vector<HostId>> children_;
};

/// All groups' circuits and trees, built once per experiment.
class GroupTables {
 public:
  GroupTables(const std::vector<MulticastGroupSpec>& specs,
              const UpDownRouting& routing, int max_tree_fanout = 0);

  [[nodiscard]] const CircuitTable& circuit(GroupId g) const;
  [[nodiscard]] const TreeTable& tree(GroupId g) const;
  [[nodiscard]] bool is_member(GroupId g, HostId h) const;
  [[nodiscard]] int group_size(GroupId g) const;

 private:
  std::unordered_map<GroupId, CircuitTable> circuits_;
  std::unordered_map<GroupId, TreeTable> trees_;
};

}  // namespace wormcast
