file(REMOVE_RECURSE
  "CMakeFiles/ablation_deadlock.dir/ablation_deadlock.cpp.o"
  "CMakeFiles/ablation_deadlock.dir/ablation_deadlock.cpp.o.d"
  "ablation_deadlock"
  "ablation_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
