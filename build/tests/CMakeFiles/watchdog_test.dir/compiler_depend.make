# Empty compiler generated dependencies file for watchdog_test.
# This may be replaced when dependencies are built.
