file(REMOVE_RECURSE
  "CMakeFiles/ip_mapping_test.dir/core/ip_mapping_test.cpp.o"
  "CMakeFiles/ip_mapping_test.dir/core/ip_mapping_test.cpp.o.d"
  "ip_mapping_test"
  "ip_mapping_test.pdb"
  "ip_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
