// Conservative time-windowed parallel execution of one simulation.
//
// A sharded run partitions the component graph across E *executors*, each
// owning a private Simulator (its own event queue, clock, tracer and
// progress counter). Executor 0 runs on the calling thread; executors
// 1..E-1 run on persistent worker threads. Execution proceeds in lookahead
// windows: with W = the minimum propagation delay of any channel whose
// transmitter and receiver live on different executors, every event fired
// in the window [s, s+W-1] can only affect another executor at time
// >= s+W — strictly after the window. So each window is run with zero
// synchronization (every executor dispatches its own queue up to the
// window end), and cross-executor effects are exchanged as timestamped
// boundary messages on the ShardBus, merged into the target queues at the
// barrier between windows.
//
// Determinism across shard counts is the contract (mirroring the sweep
// --jobs story): the merge inserts boundary messages in the canonical
// order (time, late-class, source executor, per-source emission sequence),
// so each target queue's same-time tie-break order is a pure function of
// the simulation state, never of thread timing. That makes the *insertion*
// order reproducible for a fixed shard count; bit-identical physics across
// *different* shard counts additionally relies on the same-tick
// commutativity the engine modes already pin (canonical switch arbitration
// by (request time, in-port), one-byte-per-byte-time pacing), and is
// enforced empirically by the shard-determinism gate diffing --shards
// 1/2/4 output.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/action.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

/// Cross-executor mailbox. During a window each executor appends to its
/// own outbox (no locks — outboxes are owned per source executor and the
/// barrier separates writers from the merging thread); at the barrier the
/// engine drains every outbox, sorts by (time, late, src, seq) and inserts
/// into the target simulators.
class ShardBus {
 public:
  explicit ShardBus(int n_execs);

  /// Posts `action` to run on `target`'s executor at `time`. Must be
  /// called from `src`'s executor thread during a window (or from the
  /// main thread between windows). `time` must be at or after the end of
  /// the current window — the lookahead invariant guarantees this for
  /// any effect scheduled `delay >= W` ahead.
  void post(int src, int target, Time time, bool late, InlineAction action);

  /// A deferred single-threaded callback run once at the next barrier
  /// (budget republication hooks). `fn(arg)` must touch only state owned
  /// by the enqueuing component. Called from `exec`'s thread; deduping is
  /// the caller's job.
  struct BarrierTask {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
  };
  void enqueue_barrier_task(int exec, BarrierTask task);

  /// Barrier-time merge (single-threaded): drains all outboxes into the
  /// target simulators in canonical order, then runs the barrier tasks.
  void drain_into(const std::vector<Simulator*>& sims);

 private:
  struct Posted {
    Time time = 0;
    std::uint64_t seq = 0;  // per-source emission sequence
    std::int32_t target = 0;
    std::int32_t src = 0;
    bool late = false;
    InlineAction action;
  };
  /// Padded so two executors' outboxes never share a cache line.
  struct alignas(64) Outbox {
    std::vector<Posted> posts;
    std::vector<BarrierTask> tasks;
    std::uint64_t next_seq = 0;
  };

  std::vector<Outbox> outboxes_;
  std::vector<Posted> merge_;  // scratch, reused across barriers
};

/// Runs E simulators in lockstep lookahead windows (see file comment).
/// The caller's thread is executor 0; one persistent worker thread per
/// additional executor, parked on a spin-then-yield barrier between
/// windows (windows are microseconds apart, so parking on the OS would
/// dominate the run).
class ShardedEngine {
 public:
  /// `sims[0]` is the caller-thread executor. `lookahead` must be >= 1 and
  /// no larger than the minimum cross-executor channel delay.
  ShardedEngine(std::vector<Simulator*> sims, Time lookahead);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  [[nodiscard]] ShardBus& bus() { return bus_; }
  [[nodiscard]] Time lookahead() const { return lookahead_; }
  [[nodiscard]] int num_executors() const {
    return static_cast<int>(sims_.size());
  }

  /// Runs windows until no executor holds an event at or before
  /// `deadline`, then aligns every clock to `deadline`.
  void run_until(Time deadline);

  /// Runs windows until every queue (and the bus) is empty.
  void run_to_quiescence();

  [[nodiscard]] bool idle() const;

  // Engine-wide observability (sums over executors; at one shard these
  // reduce to the classic single-Simulator numbers).
  [[nodiscard]] std::int64_t events_dispatched() const;
  [[nodiscard]] std::int64_t progress() const;
  [[nodiscard]] std::size_t event_queue_peak() const;
  [[nodiscard]] std::size_t pending_events() const;
  /// Lookahead windows executed so far (sync-overhead telemetry).
  [[nodiscard]] std::int64_t windows_run() const { return windows_; }

 private:
  void worker_main(int idx);
  /// Releases the workers into [.., end], runs executor 0's share inline,
  /// then waits for every worker to finish the window.
  void run_window(Time end);
  /// Earliest pending event across executors; kTimeNever when all idle.
  [[nodiscard]] Time next_event_time() const;

  std::vector<Simulator*> sims_;
  Time lookahead_;
  ShardBus bus_;
  std::int64_t windows_ = 0;

  // Barrier state. `window_end_` is plain: it is written before the
  // release-increment of `epoch_` and read after the acquire-load, so the
  // epoch handshake publishes it (and, transitively, every queue mutation
  // the merge performed).
  Time window_end_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace wormcast
