// Figure 12: measured throughput (per host) vs packet size for a
// Hamiltonian circuit of eight hosts on a four-switch Myrinet.
//
// Upper curve: a single host multicasting to the other seven members;
// lower curve: all eight hosts multicasting simultaneously (received data
// rate per host, lost packets excluded). Expected shape (paper):
// throughput grows with packet size as the fixed per-packet adapter cost
// amortizes — roughly 20 Mb/s at 1 KB to ~120 Mb/s at 8 KB for the single
// sender; the all-send curve sits below it, and the gap widens as input-
// buffer losses grow (Figure 13). No loss occurs in the single-sender case.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--trace-out <file.trace.json>]\n",
                   argv[0]);
      return 2;
    }
  }
  const Time span = quick ? 3'000'000 : 12'000'000;

  std::printf("# Figure 12: per-host throughput (Mb/s) vs packet size, "
              "8-host Hamiltonian circuit on 4-switch Myrinet\n");
  bench::print_header("packet_bytes", {"single_sender", "all_send_receive"});
  const std::vector<std::int64_t> sizes =
      quick ? std::vector<std::int64_t>{1024, 4096, 8192}
            : std::vector<std::int64_t>{1024, 2048, 3072, 4096, 5120,
                                        6144, 7168, 8192};
  bool first = true;
  for (const std::int64_t size : sizes) {
    // --trace-out captures the first-size single-sender run: small enough
    // to load in Perfetto, yet it exercises every layer end to end.
    const auto single = bench::run_testbed(1, size, span, /*burst=*/true,
                                           /*tracing=*/false,
                                           first ? trace_out : std::string());
    first = false;
    const auto all = bench::run_testbed(8, size, span);
    std::printf("%lld,%.1f,%.1f\n", static_cast<long long>(size),
                single.throughput_mbps, all.throughput_mbps);
    std::fflush(stdout);
  }
  return 0;
}
