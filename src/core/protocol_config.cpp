#include "core/protocol_config.h"

namespace wormcast {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kRepeatedUnicast: return "repeated-unicast";
    case Scheme::kHamiltonianSF: return "hamiltonian-sf";
    case Scheme::kHamiltonianCT: return "hamiltonian-ct";
    case Scheme::kTreeSF: return "tree-sf";
    case Scheme::kTreeCT: return "tree-ct";
    case Scheme::kTreeBroadcast: return "tree-broadcast";
    case Scheme::kCentralizedCredit: return "centralized-credit";
  }
  return "unknown";
}

}  // namespace wormcast
