// Ablation C: cut-through vs store-and-forward at the adapter as a
// function of link propagation delay (Sections 5-6: the tree "helps
// reduce latency ... when propagation delays are non-negligible", while
// cut-through's advantage shrinks once worms must be buffered anyway).
//
// One multicast on an idle network: latency by scheme for propagation
// delays from machine-room (5 bt) to campus/backbone (1000 bt) scale.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

double one_shot_latency(Scheme scheme, Time delay) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 4, 5, 7, 8, 10, 13};
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  Network net(make_torus(4, 4, 1, delay, kDefaultLinkDelay), {group}, cfg);
  Demand d;
  d.src = 4;
  d.multicast = true;
  d.group = 0;
  d.length = 1024;
  net.inject(d);
  net.run_to_quiescence();
  return net.metrics().mcast_completion().mean();
}

}  // namespace

int main(int, char**) {
  std::printf("# Ablation C: multicast completion latency (byte-times) vs "
              "link propagation delay; 8-member group, 1 KB, idle 4x4 torus\n");
  bench::print_header("prop_delay", {"hamiltonian_sf", "hamiltonian_ct",
                                     "tree_sf", "tree_broadcast"});
  for (const Time delay : {5L, 50L, 200L, 500L, 1000L}) {
    std::printf("%lld,%.0f,%.0f,%.0f,%.0f\n", static_cast<long long>(delay),
                one_shot_latency(Scheme::kHamiltonianSF, delay),
                one_shot_latency(Scheme::kHamiltonianCT, delay),
                one_shot_latency(Scheme::kTreeSF, delay),
                one_shot_latency(Scheme::kTreeBroadcast, delay));
    std::fflush(stdout);
  }
  return 0;
}
