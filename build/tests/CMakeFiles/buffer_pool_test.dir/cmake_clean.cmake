file(REMOVE_RECURSE
  "CMakeFiles/buffer_pool_test.dir/adapter/buffer_pool_test.cpp.o"
  "CMakeFiles/buffer_pool_test.dir/adapter/buffer_pool_test.cpp.o.d"
  "buffer_pool_test"
  "buffer_pool_test.pdb"
  "buffer_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
