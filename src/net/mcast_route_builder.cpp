#include "net/mcast_route_builder.h"

#include <map>
#include <memory>
#include <stdexcept>

namespace wormcast {

namespace {

struct TrieNode {
  // Ordered by port so the encoding (and thus traffic) is deterministic.
  std::map<PortId, std::unique_ptr<TrieNode>> children;
};

void insert_path(TrieNode& root, const std::vector<PortId>& ports) {
  TrieNode* at = &root;
  for (const PortId p : ports) {
    auto& slot = at->children[p];
    if (!slot) slot = std::make_unique<TrieNode>();
    at = slot.get();
  }
  if (!at->children.empty())
    throw std::logic_error("multicast path ends at an interior tree node");
}

std::vector<McastRouteTree> to_branches(const TrieNode& node) {
  std::vector<McastRouteTree> out;
  for (const auto& [port, child] : node.children) {
    McastRouteTree t;
    t.port = port;
    t.children = to_branches(*child);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

std::vector<McastRouteTree> build_mcast_branches(
    const Topology& topo, const UpDownRouting& routing, HostId src,
    const std::vector<HostId>& dests) {
  (void)topo;
  TrieNode root;
  bool any = false;
  for (const HostId d : dests) {
    if (d == src) continue;
    any = true;
    insert_path(root, routing.route(src, d).ports());
  }
  if (!any) throw std::invalid_argument("multicast with no destinations");
  return to_branches(root);
}

}  // namespace wormcast
