file(REMOVE_RECURSE
  "libwormcast_traffic.a"
)
