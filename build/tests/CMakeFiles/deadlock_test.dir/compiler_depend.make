# Empty compiler generated dependencies file for deadlock_test.
# This may be replaced when dependencies are built.
