// wormtrace flight recorder: ring semantics, Chrome-trace export shape,
// counter registry, and (when tracing is compiled in) an end-to-end run
// that exercises every instrumented layer.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/network.h"
#include "net/topologies.h"
#include "sim/counters.h"
#include "sim/trace_export.h"
#include "traffic/groups.h"

namespace wormcast {
namespace {

TraceEvent make_event(Time t, TraceEventType type, std::int32_t node,
                      std::int32_t port, std::uint64_t worm,
                      std::int64_t arg) {
  TraceEvent e;
  e.t = t;
  e.type = type;
  e.node = node;
  e.port = port;
  e.worm = worm;
  e.arg = arg;
  return e;
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;
  EXPECT_FALSE(tr.enabled());
  EXPECT_EQ(tr.recorded(), 0);
  EXPECT_EQ(tr.capacity(), 0u);
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, RingWrapKeepsLastEventsOldestFirst) {
  Tracer tr;
  tr.enable(4);  // rounds up to 16, the minimum ring
  EXPECT_EQ(tr.capacity(), 16u);
  for (int i = 0; i < 40; ++i)
    tr.record(i, TraceEventType::kChanGo, 0, 0, 0, i);
  EXPECT_EQ(tr.recorded(), 40);
  EXPECT_EQ(tr.dropped(), 40 - 16);
  const std::vector<TraceEvent> all = tr.snapshot();
  ASSERT_EQ(all.size(), 16u);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].arg, static_cast<std::int64_t>(24 + i));  // 24..39
  const std::vector<TraceEvent> tail = tr.snapshot(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].arg, 37);
  EXPECT_EQ(tail[2].arg, 39);
}

TEST(Tracer, ReEnableWithSameCapacityKeepsEvents) {
  Tracer tr;
  tr.enable(16);
  tr.record(1, TraceEventType::kChanStop, 0, 0, 0, 0);
  tr.disable();
  EXPECT_FALSE(tr.enabled());
  tr.enable(16);
  EXPECT_EQ(tr.recorded(), 1);
  tr.enable(64);  // different capacity discards
  EXPECT_EQ(tr.recorded(), 0);
}

TEST(TraceExport, SpanPairingAndTrackMetadata) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, TraceEventType::kChanHead, 2, 1, 77, 500));
  events.push_back(make_event(20, TraceEventType::kChanStop, 2, 1, 77, 0));
  events.push_back(make_event(60, TraceEventType::kChanTail, 2, 1, 77, 0));
  const std::string json = chrome_trace_json(events);
  // Perfetto essentials: the top-level array, a named thread, the
  // head->tail pair rendered as one 50-us complete span, the STOP as an
  // instant in between.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"chan 2.1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worm\",\"ph\":\"X\",\"ts\":10,\"dur\":50"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"chan.stop\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(json.find("\"worm\":77"), std::string::npos);
}

TEST(TraceExport, UnmatchedCloserBecomesInstant) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(5, TraceEventType::kAdpTxDone, 3, -1, 9, 0));
  const std::string json = chrome_trace_json(events);
  EXPECT_NE(json.find("\"name\":\"adp.tx_done\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(json.find("\"adapter h3\""), std::string::npos);
}

TEST(TraceExport, DanglingOpenSpanIsFlushedToEnd) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, TraceEventType::kAdpTxStart, 0, -1, 5, 64));
  events.push_back(make_event(42, TraceEventType::kChanGo, 1, 0, 0, 0));
  const std::string json = chrome_trace_json(events);
  // The synthetic end is honest about itself: the span is marked
  // unterminated instead of masquerading as a real completion.
  EXPECT_NE(json.find("\"name\":\"adp.tx\",\"ph\":\"X\",\"ts\":10,\"dur\":32"),
            std::string::npos);
  EXPECT_NE(json.find("\"unterminated\":1"), std::string::npos);
}

TEST(TraceExport, StaleOpenReplacedByReopenIsMarkedUnterminated) {
  // Two opens on the same (track, worm) without a closer in between: the
  // first span's end is synthesized at the reopen and must carry the
  // unterminated marker; the second closes normally and must not.
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, TraceEventType::kAdpTxStart, 0, -1, 5, 64));
  events.push_back(make_event(30, TraceEventType::kAdpTxStart, 0, -1, 5, 64));
  events.push_back(make_event(50, TraceEventType::kAdpTxDone, 0, -1, 5, 0));
  const std::string json = chrome_trace_json(events);
  const auto stale = json.find("\"ph\":\"X\",\"ts\":10");
  ASSERT_NE(stale, std::string::npos);
  EXPECT_NE(json.find("\"unterminated\":1", stale), std::string::npos);
  const auto closed = json.find("\"ph\":\"X\",\"ts\":30,\"dur\":20");
  ASSERT_NE(closed, std::string::npos);
  // No marker on the properly closed span.
  const std::string closed_entry =
      json.substr(closed, json.find('}', closed) - closed);
  EXPECT_EQ(closed_entry.find("unterminated"), std::string::npos);
}

TEST(TraceExport, FormatTraceTailListsEvents) {
  Tracer tr;
  tr.enable(16);
  EXPECT_EQ(format_trace_tail(tr), "");  // nothing recorded yet
  tr.record(100, TraceEventType::kArbGrant, 8, 2, 42, 1);
  const std::string tail = format_trace_tail(tr, 8);
  EXPECT_NE(tail.find("trace tail (last 1 of 1 recorded):"),
            std::string::npos);
  EXPECT_NE(tail.find("t=100 sw 8.out2 arb.grant worm=42 arg=1"),
            std::string::npos);
}

TEST(CounterRegistry, SnapshotPreservesRegistrationOrder) {
  CounterRegistry reg;
  int ticks = 3;
  reg.add("ticks", [&ticks] { return static_cast<double>(ticks); });
  reg.add("pi-ish", [] { return 3.14; });
  EXPECT_EQ(reg.size(), 2u);
  ticks = 7;
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "ticks");
  EXPECT_DOUBLE_EQ(snap[0].second, 7.0);  // getters read live values
  EXPECT_EQ(snap[1].first, "pi-ish");
}

#ifndef WORMCAST_TRACE_DISABLED

TEST(TraceEndToEnd, MulticastRunRecordsAllLayers) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.traffic.offered_load = 1e-9;  // inject directly
  auto group = make_full_group(4);
  Network net(make_myrinet_testbed(), {group}, cfg);
  net.enable_tracing(4096);

  Demand d;
  d.src = 0;
  d.multicast = true;
  d.group = 0;
  d.length = 256;
  net.inject(d);
  net.run_to_quiescence();

  const Tracer& tr = net.sim().tracer();
  ASSERT_GT(tr.recorded(), 0);
  bool saw_channel = false;
  bool saw_switch = false;
  bool saw_adapter = false;
  bool saw_host = false;
  for (const TraceEvent& e : tr.snapshot()) {
    switch (trace_track_of(e.type)) {
      case TraceTrack::kChannel: saw_channel = true; break;
      case TraceTrack::kSwitchOut:
      case TraceTrack::kSwitchIn: saw_switch = true; break;
      case TraceTrack::kAdapter: saw_adapter = true; break;
      case TraceTrack::kHost: saw_host = true; break;
    }
  }
  EXPECT_TRUE(saw_channel);
  EXPECT_TRUE(saw_switch);
  EXPECT_TRUE(saw_adapter);
  EXPECT_TRUE(saw_host);

  // Export round-trip: the file exists and carries the Perfetto skeleton.
  const std::string path = ::testing::TempDir() + "wormtrace_test.trace.json";
  ASSERT_TRUE(net.write_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    content.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);  // worm spans

  // The registry exposes the tracer's occupancy alongside the run counters.
  CounterRegistry reg;
  net.register_counters(reg);
  double recorded = -1.0;
  for (const auto& [name, value] : reg.snapshot())
    if (name == "trace_events_recorded") recorded = value;
  EXPECT_DOUBLE_EQ(recorded, static_cast<double>(tr.recorded()));
}

TEST(TraceEndToEnd, TracingDoesNotChangeResults) {
  const auto run = [](bool tracing) {
    ExperimentConfig cfg;
    cfg.protocol.scheme = Scheme::kHamiltonianSF;
    cfg.traffic.offered_load = 1e-9;
    auto group = make_full_group(4);
    Network net(make_myrinet_testbed(), {group}, cfg);
    if (tracing) net.enable_tracing(1024);
    Demand d;
    d.src = 1;
    d.multicast = true;
    d.group = 0;
    d.length = 512;
    net.inject(d);
    net.run_to_quiescence();
    return std::make_pair(net.sim().now(),
                          net.metrics().mcast_latency().sorted_values());
  };
  const auto plain = run(false);
  const auto traced = run(true);
  EXPECT_EQ(plain.first, traced.first);    // identical final time
  EXPECT_EQ(plain.second, traced.second);  // identical latency samples
}

#endif  // WORMCAST_TRACE_DISABLED

}  // namespace
}  // namespace wormcast
