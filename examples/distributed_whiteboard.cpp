// A 'wb'-style distributed whiteboard (the paper demonstrates its Myrinet
// multicast with exactly this application, Section 8.1).
//
// Eight participants on the 4-switch Myrinet testbed share a whiteboard.
// Every stroke is multicast to the group through a class-D IP address
// mapped onto a Myrinet group (low 8 bits). Strokes must appear in the
// same order on every screen, so the totally ordered Hamiltonian circuit
// is used; the example verifies the order property and reports per-stroke
// latency.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ip_mapping.h"
#include "core/network.h"
#include "net/topologies.h"
#include "sim/random.h"

using namespace wormcast;

int main() {
  std::printf("distributed whiteboard on a 4-switch Myrinet\n");
  std::printf("============================================\n\n");

  // The session's IP multicast group and its fabric-level mapping.
  const std::uint32_t session_ip = ipv4(224, 2, 127, 61);  // a wb session
  const GroupId fabric_group = myrinet_group_of(session_ip);
  std::printf("IP group 224.2.127.61 -> Myrinet multicast group %d\n\n",
              fabric_group);

  MulticastGroupSpec group;
  group.id = fabric_group;
  for (HostId h = 0; h < 8; ++h) group.members.push_back(h);

  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.total_ordering = true;  // strokes in the same order everywhere
  Network net(make_myrinet_testbed(), {group}, cfg);

  // 60 strokes from users drawing concurrently: Poisson-ish arrivals,
  // small stroke packets (a few hundred bytes of vector data).
  RandomStream rng(42);
  const int strokes = 60;
  for (int i = 0; i < strokes; ++i) {
    const Time when = 1 + i * 400 + rng.uniform(0, 200);
    const auto artist = static_cast<HostId>(rng.uniform(0, 7));
    const auto len = rng.uniform(80, 600);
    net.sim().at(when, [&net, artist, len, fabric_group] {
      Demand d;
      d.src = artist;
      d.multicast = true;
      d.group = fabric_group;
      d.length = len;
      net.inject(d);
    });
  }
  net.run_to_quiescence();

  std::printf("strokes drawn:      %d\n", strokes);
  std::printf("strokes delivered:  %lld (to 7 peers each)\n",
              static_cast<long long>(net.metrics().messages_completed()));
  std::printf("per-peer latency:   mean %.0f bt (%.1f us), p95 %.0f bt\n",
              net.metrics().mcast_latency().mean(),
              net.metrics().mcast_latency().mean() * 0.0125,
              net.metrics().mcast_latency().percentile(95));

  // Verify every participant rendered the strokes in the same order.
  // Artists do not receive their own strokes over the network, so compare
  // each pair of screens on the strokes both actually rendered.
  bool consistent = true;
  for (HostId a = 0; a < 8 && consistent; ++a) {
    const auto* oa = net.metrics().order_of(a, fabric_group);
    if (oa == nullptr) continue;
    for (HostId b = a + 1; b < 8 && consistent; ++b) {
      const auto* ob = net.metrics().order_of(b, fabric_group);
      if (ob == nullptr) continue;
      const auto common = [](const std::vector<std::uint64_t>& xs,
                             const std::vector<std::uint64_t>& ys) {
        std::vector<std::uint64_t> out;
        for (const auto id : xs)
          if (std::find(ys.begin(), ys.end(), id) != ys.end())
            out.push_back(id);
        return out;
      };
      if (common(*oa, *ob) != common(*ob, *oa)) consistent = false;
    }
  }
  std::printf("render order:       %s on all screens\n",
              consistent ? "IDENTICAL" : "DIVERGED");
  return consistent ? 0 : 1;
}
